(* Pure schedule-table computation: the descriptor images that
   [Accel.generate] bakes into ROMs, computed without elaborating any
   hardware.  This is the software half of the runtime-programmable
   accelerator: [Accel.generate ~programmable] sizes every schedule table
   to a capacity envelope and loads these images at configuration time,
   and [Tl_compile] re-runs this module for a *new* einsum against an
   already-generated netlist to obtain a program.

   Every builder here mirrors its counterpart in [accel.ml] line for line
   (same memory names, same image contents, same bank-address allocation
   order — including Hashtbl iteration order, which is deterministic for
   identical insertion sequences).  The correspondence is locked by a
   sync test that compares [build] output against the ROM images recorded
   in a freshly generated circuit; touch one side only together with the
   other. *)

exception Unsupported of string

type domain = Cycle | Pass

type envelope = {
  env_cycles : int;  (** max schedule length (cycle-indexed table size) *)
  env_passes : int;  (** max pass count (pass tables hold env_passes+1) *)
  env_elems : int;   (** max elements per input data memory *)
  env_bank : int;    (** max cells per collector bank *)
}

type mem = {
  m_name : string;
  m_domain : domain;
  m_image : int array;  (** natural length: total (Cycle) / passes+1 (Pass) *)
}

type input = {
  in_tensor : string;  (** request-side tensor name (environment key) *)
  in_mem : string;     (** target-side data-memory key ([Accel.input_rams]) *)
  in_elems : int;
  in_shape : int array;
}

type t = {
  l_design : Tl_stt.Design.t;
  l_rows : int;
  l_cols : int;
  l_total : int;
  l_passes : int;
  l_events : int;
  l_structure : string;
  l_mems : mem list;
  l_inputs : input list;
  l_banks : (string * int * int) list;  (** name, declared capacity, used *)
  l_out : (int list * (string * int)) list;
      (** output element index → (bank name, bank address) *)
  l_out_shape : int array;
}

(* A compiled program: the loadable subset of a layout, stripped of the
   design so it serialises cleanly and can outlive the request that
   produced it. *)
type program = {
  p_name : string;
  p_structure : string;
  p_total : int;
  p_passes : int;
  p_events : int;
  p_images : (string * (domain * int array)) list;
  p_inputs : input list;
  p_out : (int list * (string * int)) list;
  p_out_shape : int array;
}

let domain_string = function Cycle -> "cycle" | Pass -> "pass"

(* ------------------------------------------------------------------ *)
(* The controller's schedule geometry, shared with [Accel.generate].    *)

let max_dt (design : Tl_stt.Design.t) =
  List.fold_left
    (fun acc (ti : Tl_stt.Design.tensor_info) ->
      match ti.Tl_stt.Design.dataflow with
      | Tl_stt.Dataflow.Systolic { dt; _ } -> max acc dt
      | Tl_stt.Dataflow.Reuse2d
          (Tl_stt.Dataflow.Systolic_multicast { systolic; _ }) ->
        max acc systolic.Tl_stt.Dataflow.dt
      | Tl_stt.Dataflow.Unicast | Tl_stt.Dataflow.Stationary _
      | Tl_stt.Dataflow.Multicast _
      | Tl_stt.Dataflow.Reuse2d
          (Tl_stt.Dataflow.Broadcast | Tl_stt.Dataflow.Multicast_stationary _)
      | Tl_stt.Dataflow.Reuse_full -> acc)
    1 design.Tl_stt.Design.tensors

let total_cycles (sched : Schedule.t) ~rows design =
  sched.Schedule.compute_end + rows + max_dt design + 4

(* ------------------------------------------------------------------ *)
(* Build context: the pure mirror of accel.ml's [ctx].                  *)

type pctx = {
  sched : Schedule.t;
  total : int;
  rename : string -> string;  (* request tensor name → target tensor name *)
  shapes : (string * int array) list;  (* request tensor name → shape *)
  mutable mems : mem list;  (* reverse insertion order *)
  mutable inputs : input list;  (* reverse insertion order *)
  seen_inputs : (string, unit) Hashtbl.t;
  out_locs : (int list, string * int) Hashtbl.t;
  mutable banks : (string * int * int) list;  (* reverse insertion order *)
  tally_reads : (string, int array) Hashtbl.t;
  tally_sys_link : int array;
  tally_mc_link : int array;
  mutable struct_lines : string list;  (* reverse order *)
}

let structural ctx line = ctx.struct_lines <- line :: ctx.struct_lines

let add_mem ctx ~domain name image =
  ctx.mems <- { m_name = name; m_domain = domain; m_image = image } :: ctx.mems

let grid_iter rows cols f =
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      f (r, c)
    done
  done

let active_pes ctx =
  let acc = ref [] in
  grid_iter ctx.sched.Schedule.rows ctx.sched.Schedule.cols (fun p ->
      if Schedule.pe_active ctx.sched p then acc := p :: !acc);
  List.rev !acc

let events_of ctx (r, c) = ctx.sched.Schedule.by_pe.(r).(c)

let shape_of ctx tensor =
  try List.assoc tensor ctx.shapes
  with Not_found -> raise (Unsupported ("Layout: unknown tensor " ^ tensor))

(* row-major offset, mirroring Tl_ir.Dense.offset *)
let offset_in shape idx =
  if Array.length idx <> Array.length shape then
    raise (Unsupported "Layout: index rank mismatch");
  let off = ref 0 in
  Array.iteri
    (fun d i ->
      if i < 0 || i >= shape.(d) then
        raise (Unsupported "Layout: index out of bounds");
      off := (!off * shape.(d)) + i)
    idx;
  !off

(* the data memory backing one tensor: record it once, renamed *)
let data_mem ctx (access : Tl_ir.Access.t) =
  let tensor = access.Tl_ir.Access.tensor in
  if not (Hashtbl.mem ctx.seen_inputs tensor) then begin
    Hashtbl.add ctx.seen_inputs tensor ();
    let shape = shape_of ctx tensor in
    ctx.inputs <-
      { in_tensor = tensor; in_mem = ctx.rename tensor;
        in_elems = Array.fold_left ( * ) 1 shape; in_shape = shape }
      :: ctx.inputs
  end

let tensor_offset ctx access ev =
  let idx = Schedule.tensor_index ctx.sched access ev in
  offset_in (shape_of ctx access.Tl_ir.Access.tensor) idx

(* feed port image: cycle → data-memory address *)
let value_mem ctx access name pairs =
  data_mem ctx access;
  let data = Array.make ctx.total 0 in
  List.iter (fun (cycle, off) -> data.(cycle) <- off) pairs;
  add_mem ctx ~domain:Cycle (name ^ "_addr") data

let bitmap_mem ctx name cycles =
  let data = Array.make ctx.total 0 in
  List.iter (fun cycle -> data.(cycle) <- 1) cycles;
  add_mem ctx ~domain:Cycle name data

(* stationary feed image: pass → address (+ trailing zero entry) *)
let stage_mem ctx access name per_pass =
  data_mem ctx access;
  let data = Array.make (ctx.sched.Schedule.passes + 1) 0 in
  List.iter (fun (pass, off) -> data.(pass) <- off) per_pass;
  add_mem ctx ~domain:Pass (name ^ "_saddr") data

let pos_name prefix (r, c) = Printf.sprintf "%s_%d_%d" prefix r c

(* ------------------------------------------------------------------ *)
(* Observability tallies (identical accounting to accel.ml, so the
   compiled counter-increment images match the generated ones).         *)

let tally arr cycle = arr.(cycle) <- arr.(cycle) + 1

let tally_read ctx tensor cycle =
  let a =
    match Hashtbl.find_opt ctx.tally_reads tensor with
    | Some a -> a
    | None ->
      let a = Array.make ctx.total 0 in
      Hashtbl.add ctx.tally_reads tensor a;
      a
  in
  tally a cycle

let stage_load_cycles ctx =
  let sched = ctx.sched in
  0
  :: List.init
       (max 0 (sched.Schedule.passes - 1))
       (fun p ->
         sched.Schedule.preload + ((p + 1) * sched.Schedule.span) - 1)

let tally_stage_loads ctx tensor =
  List.iter (fun cycle -> tally_read ctx tensor cycle) (stage_load_cycles ctx)

let distinct_cycles pairs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (cycle, _) ->
      if Hashtbl.mem seen cycle then false
      else begin
        Hashtbl.add seen cycle ();
        true
      end)
    pairs
  |> List.map fst

(* ------------------------------------------------------------------ *)
(* Collector banks (pure): same first-touch allocation order.           *)

type pcollector = {
  pc_name : string;
  pc_capacity : int;
  pc_table : (int list, int) Hashtbl.t;
  mutable pc_next : int;
  mutable pc_writes : (int * int list) list;
}

let make_collector ctx ~name ~capacity =
  ignore ctx;
  { pc_name = name; pc_capacity = capacity; pc_table = Hashtbl.create 16;
    pc_next = 0; pc_writes = [] }

let alloc_cell ctx col idx =
  match Hashtbl.find_opt col.pc_table idx with
  | Some a -> a
  | None ->
    let a = col.pc_next in
    if a >= max 1 col.pc_capacity then
      raise (Unsupported ("collector bank overflow: " ^ col.pc_name));
    col.pc_next <- a + 1;
    Hashtbl.add col.pc_table idx a;
    Hashtbl.replace ctx.out_locs idx (col.pc_name, a);
    a

let finalize_collector ctx name col =
  let we_data = Array.make ctx.total 0 in
  let addr_data = Array.make ctx.total 0 in
  List.iter
    (fun (cycle, idx) ->
      if we_data.(cycle) <> 0 then
        raise (Unsupported ("collector write conflict: " ^ name));
      we_data.(cycle) <- 1;
      addr_data.(cycle) <- alloc_cell ctx col idx)
    col.pc_writes;
  add_mem ctx ~domain:Cycle (name ^ "_we") we_data;
  add_mem ctx ~domain:Cycle (name ^ "_addr") addr_data;
  ctx.banks <- (name, col.pc_capacity, col.pc_next) :: ctx.banks

(* ------------------------------------------------------------------ *)
(* Input-tensor images.                                                 *)

let index_table ctx access =
  let tbl : (int * int * int, int array) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (r, c) ->
      List.iter
        (fun ev ->
          Hashtbl.replace tbl (r, c, ev.Schedule.cycle)
            (Schedule.tensor_index ctx.sched access ev))
        (events_of ctx (r, c)))
    (active_pes ctx);
  tbl

let has_peer tbl ((r, c) : Geometry.pos) cycle idx =
  match Hashtbl.find_opt tbl (r, c, cycle) with
  | Some idx' -> idx' = idx
  | None -> false

(* renamed base name for a tensor's table family *)
let tname ctx (access : Tl_ir.Access.t) suffix =
  ctx.rename access.Tl_ir.Access.tensor ^ suffix

let build_unicast_input ctx access =
  List.iter
    (fun p ->
      let pairs =
        List.map
          (fun ev -> (ev.Schedule.cycle, tensor_offset ctx access ev))
          (events_of ctx p)
      in
      List.iter
        (fun (cycle, _) -> tally_read ctx access.Tl_ir.Access.tensor cycle)
        pairs;
      value_mem ctx access (pos_name (tname ctx access "_uni") p) pairs)
    (active_pes ctx)

let build_stationary_input ctx access =
  List.iter
    (fun p ->
      let per_pass =
        List.map
          (fun ev -> (ev.Schedule.pass, tensor_offset ctx access ev))
          (events_of ctx p)
      in
      tally_stage_loads ctx access.Tl_ir.Access.tensor;
      stage_mem ctx access (pos_name (tname ctx access "_st") p) per_pass)
    (active_pes ctx)

let group_by_line ctx ~dir pes =
  let rows = ctx.sched.Schedule.rows and cols = ctx.sched.Schedule.cols in
  let groups : (Geometry.pos, Geometry.pos list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun p ->
      let rep = Geometry.line_rep ~rows ~cols ~dir p in
      match Hashtbl.find_opt groups rep with
      | Some l -> l := p :: !l
      | None -> Hashtbl.add groups rep (ref [ p ]))
    pes;
  Hashtbl.fold (fun rep l acc -> (rep, List.rev !l) :: acc) groups []
  |> List.sort compare

let build_multicast_input ctx access ~dp =
  List.iter
    (fun (rep, members) ->
      let pairs =
        List.concat_map
          (fun p ->
            List.map
              (fun ev -> (ev.Schedule.cycle, tensor_offset ctx access ev))
              (events_of ctx p))
          members
      in
      List.iter
        (fun cycle -> tally_read ctx access.Tl_ir.Access.tensor cycle)
        (distinct_cycles pairs);
      List.iter (fun (cycle, _) -> tally ctx.tally_mc_link cycle) pairs;
      value_mem ctx access (pos_name (tname ctx access "_mc") rep) pairs)
    (group_by_line ctx ~dir:dp (active_pes ctx))

let build_broadcast_input ctx access =
  let pairs =
    List.concat_map
      (fun p ->
        List.map
          (fun ev -> (ev.Schedule.cycle, tensor_offset ctx access ev))
          (events_of ctx p))
      (active_pes ctx)
  in
  List.iter
    (fun cycle -> tally_read ctx access.Tl_ir.Access.tensor cycle)
    (distinct_cycles pairs);
  List.iter (fun (cycle, _) -> tally ctx.tally_mc_link cycle) pairs;
  value_mem ctx access (tname ctx access "_bc") pairs

let build_multicast_stationary_input ctx access ~multicast =
  List.iter
    (fun (rep, members) ->
      let per_pass =
        List.concat_map
          (fun p ->
            List.map
              (fun ev -> (ev.Schedule.pass, tensor_offset ctx access ev))
              (events_of ctx p))
          members
      in
      tally_stage_loads ctx access.Tl_ir.Access.tensor;
      List.iter
        (fun cycle -> tally ctx.tally_mc_link cycle)
        (stage_load_cycles ctx);
      stage_mem ctx access (pos_name (tname ctx access "_mcst") rep) per_pass)
    (group_by_line ctx ~dir:multicast (active_pes ctx))

(* Systolic chains: entry detection is purely schedule-driven, so the
   injection bitmaps and feed images replicate accel.ml's exactly. *)
let build_systolic_chains ctx access ~dp ~dt ~entry_bus =
  let tbl = index_table ctx access in
  let pes = active_pes ctx in
  List.iter
    (fun p ->
      let entries =
        List.filter
          (fun ev ->
            let idx = Schedule.tensor_index ctx.sched access ev in
            not (has_peer tbl (Geometry.back p dp) (ev.Schedule.cycle - dt) idx))
          (events_of ctx p)
      in
      let entry_cycles = List.map (fun ev -> ev.Schedule.cycle) entries in
      List.iter
        (fun ev ->
          if not (List.mem ev.Schedule.cycle entry_cycles) then
            tally ctx.tally_sys_link ev.Schedule.cycle)
        (events_of ctx p);
      if entries <> [] then begin
        bitmap_mem ctx (pos_name (tname ctx access "_inj") p) entry_cycles;
        entry_bus p entries
      end)
    pes

let build_systolic_input ctx access ~dp ~dt =
  let entry_bus p entries =
    let pairs =
      List.map
        (fun ev -> (ev.Schedule.cycle, tensor_offset ctx access ev))
        entries
    in
    List.iter
      (fun (cycle, _) -> tally_read ctx access.Tl_ir.Access.tensor cycle)
      pairs;
    value_mem ctx access (pos_name (tname ctx access "_feed") p) pairs
  in
  build_systolic_chains ctx access ~dp ~dt ~entry_bus

let build_systolic_multicast_input ctx access ~multicast ~dp ~dt =
  let rows = ctx.sched.Schedule.rows and cols = ctx.sched.Schedule.cols in
  let line_bus : (Geometry.pos, unit) Hashtbl.t = Hashtbl.create 8 in
  let line_pairs : (Geometry.pos, (int * int) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let entry_bus p entries =
    let rep = Geometry.line_rep ~rows ~cols ~dir:multicast p in
    let pairs =
      List.map
        (fun ev -> (ev.Schedule.cycle, tensor_offset ctx access ev))
        entries
    in
    List.iter (fun (cycle, _) -> tally ctx.tally_mc_link cycle) pairs;
    (match Hashtbl.find_opt line_pairs rep with
     | Some l -> l := pairs @ !l
     | None -> Hashtbl.add line_pairs rep (ref pairs));
    if not (Hashtbl.mem line_bus rep) then Hashtbl.add line_bus rep ()
  in
  build_systolic_chains ctx access ~dp ~dt ~entry_bus;
  Hashtbl.iter
    (fun rep () ->
      let pairs =
        match Hashtbl.find_opt line_pairs rep with
        | Some l -> !l
        | None -> []
      in
      List.iter
        (fun cycle -> tally_read ctx access.Tl_ir.Access.tensor cycle)
        (distinct_cycles pairs);
      value_mem ctx access (pos_name (tname ctx access "_lfeed") rep) pairs)
    line_bus

let build_input ctx (ti : Tl_stt.Design.tensor_info) =
  let access = ti.Tl_stt.Design.access in
  match ti.Tl_stt.Design.dataflow with
  | Tl_stt.Dataflow.Unicast -> build_unicast_input ctx access
  | Tl_stt.Dataflow.Stationary _ -> build_stationary_input ctx access
  | Tl_stt.Dataflow.Systolic { dp; dt } ->
    build_systolic_input ctx access ~dp ~dt
  | Tl_stt.Dataflow.Multicast { dp } -> build_multicast_input ctx access ~dp
  | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast ->
    build_broadcast_input ctx access
  | Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Multicast_stationary { multicast })
    ->
    build_multicast_stationary_input ctx access ~multicast
  | Tl_stt.Dataflow.Reuse2d
      (Tl_stt.Dataflow.Systolic_multicast { multicast; systolic }) ->
    build_systolic_multicast_input ctx access ~multicast
      ~dp:systolic.Tl_stt.Dataflow.dp ~dt:systolic.Tl_stt.Dataflow.dt
  | Tl_stt.Dataflow.Reuse_full ->
    raise (Unsupported "full-reuse input tensors are not implemented")

(* ------------------------------------------------------------------ *)
(* Output-tensor images.                                                *)

let out_elem ctx access ev =
  Array.to_list (Schedule.tensor_index ctx.sched access ev)

let build_stationary_output ctx access =
  let cols = ctx.sched.Schedule.cols in
  let sched = ctx.sched in
  let fp_rows =
    1 + List.fold_left (fun acc (r, _) -> max acc r) 0 (active_pes ctx)
  in
  if sched.Schedule.span < fp_rows then
    raise
      (Unsupported
         (Printf.sprintf
            "stationary output: stage span %d shorter than drain chain %d"
            sched.Schedule.span fp_rows));
  structural ctx (Printf.sprintf "fp_rows %d" fp_rows);
  let col_active = Array.make cols false in
  List.iter (fun (_, c) -> col_active.(c) <- true) (active_pes ctx);
  for c = 0 to cols - 1 do
    if col_active.(c) then begin
      let name = Printf.sprintf "obank_col%d" c in
      let collector =
        make_collector ctx ~name
          ~capacity:(fp_rows * (sched.Schedule.passes + 1))
      in
      for r = 0 to fp_rows - 1 do
        let seen_pass = Hashtbl.create 8 in
        List.iter
          (fun ev ->
            if not (Hashtbl.mem seen_pass ev.Schedule.pass) then begin
              Hashtbl.add seen_pass ev.Schedule.pass ();
              let tick_cycle =
                sched.Schedule.preload
                + ((ev.Schedule.pass + 1) * sched.Schedule.span)
                - 1
              in
              let write_cycle = tick_cycle + (fp_rows - r) in
              collector.pc_writes <-
                (write_cycle, out_elem ctx access ev) :: collector.pc_writes
            end)
          (events_of ctx (r, c))
      done;
      finalize_collector ctx name collector
    end
  done

let build_systolic_output ctx access ~dp ~dt =
  let tbl = index_table ctx access in
  let pes = active_pes ctx in
  let exits =
    List.filter_map
      (fun p ->
        let exits =
          List.filter
            (fun ev ->
              let idx = Schedule.tensor_index ctx.sched access ev in
              not (has_peer tbl (Geometry.step p dp) (ev.Schedule.cycle + dt) idx))
            (events_of ctx p)
        in
        if exits = [] then None else Some (p, exits))
      pes
  in
  List.iter
    (fun p ->
      let entries =
        List.filter
          (fun ev ->
            let idx = Schedule.tensor_index ctx.sched access ev in
            not (has_peer tbl (Geometry.back p dp) (ev.Schedule.cycle - dt) idx))
          (events_of ctx p)
      in
      (* the three psum-input cases are structural: all-fresh (constant
         zero), pure chain (neighbour), or injection-muxed (oinj bitmap) *)
      if List.length entries = List.length (events_of ctx p) then
        structural ctx (Printf.sprintf "opsum %s fresh" (pos_name "" p))
      else if entries = [] then
        structural ctx (Printf.sprintf "opsum %s chain" (pos_name "" p))
      else begin
        structural ctx (Printf.sprintf "opsum %s mux" (pos_name "" p));
        bitmap_mem ctx
          (pos_name (tname ctx access "_oinj") p)
          (List.map (fun ev -> ev.Schedule.cycle) entries)
      end)
    pes;
  List.iter
    (fun (p, exit_events) ->
      let name = pos_name (tname ctx access "_obank") p in
      let collector =
        make_collector ctx ~name ~capacity:(List.length exit_events)
      in
      List.iter
        (fun ev ->
          collector.pc_writes <-
            (ev.Schedule.cycle + dt, out_elem ctx access ev)
            :: collector.pc_writes)
        exit_events;
      finalize_collector ctx name collector)
    exits

let build_multicast_output ctx access ~dp =
  List.iter
    (fun (rep, members) ->
      let name = pos_name (tname ctx access "_tbank") rep in
      let events = List.concat_map (fun p -> events_of ctx p) members in
      let writes = Hashtbl.create 64 in
      List.iter
        (fun ev ->
          Hashtbl.replace writes ev.Schedule.cycle (out_elem ctx access ev))
        events;
      let collector =
        make_collector ctx ~name ~capacity:(Hashtbl.length writes)
      in
      Hashtbl.iter
        (fun cycle elem ->
          collector.pc_writes <- (cycle, elem) :: collector.pc_writes)
        writes;
      finalize_collector ctx name collector)
    (group_by_line ctx ~dir:dp (active_pes ctx))

let build_multicast_stationary_output ctx access ~multicast =
  let sched = ctx.sched in
  List.iter
    (fun (rep, members) ->
      let name = pos_name (tname ctx access "_tsbank") rep in
      let per_pass = Hashtbl.create 8 in
      List.iter
        (fun p ->
          List.iter
            (fun ev ->
              Hashtbl.replace per_pass ev.Schedule.pass
                (out_elem ctx access ev))
            (events_of ctx p))
        members;
      let collector =
        make_collector ctx ~name ~capacity:(Hashtbl.length per_pass)
      in
      Hashtbl.iter
        (fun pass elem ->
          let tick_cycle =
            sched.Schedule.preload + ((pass + 1) * sched.Schedule.span) - 1
          in
          collector.pc_writes <- (tick_cycle, elem) :: collector.pc_writes)
        per_pass;
      finalize_collector ctx name collector)
    (group_by_line ctx ~dir:multicast (active_pes ctx))

let build_unicast_output ctx access =
  List.iter
    (fun p ->
      let events = events_of ctx p in
      let name = pos_name (tname ctx access "_ubank") p in
      let collector =
        make_collector ctx ~name ~capacity:(List.length events)
      in
      List.iter
        (fun ev ->
          collector.pc_writes <-
            (ev.Schedule.cycle, out_elem ctx access ev) :: collector.pc_writes)
        events;
      finalize_collector ctx name collector)
    (active_pes ctx)

let build_output ctx (ti : Tl_stt.Design.tensor_info) =
  let access = ti.Tl_stt.Design.access in
  match ti.Tl_stt.Design.dataflow with
  | Tl_stt.Dataflow.Unicast -> build_unicast_output ctx access
  | Tl_stt.Dataflow.Stationary _ -> build_stationary_output ctx access
  | Tl_stt.Dataflow.Systolic { dp; dt } ->
    build_systolic_output ctx access ~dp ~dt
  | Tl_stt.Dataflow.Multicast { dp } -> build_multicast_output ctx access ~dp
  | Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Multicast_stationary { multicast })
    ->
    build_multicast_stationary_output ctx access ~multicast
  | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast
  | Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Systolic_multicast _)
  | Tl_stt.Dataflow.Reuse_full ->
    raise
      (Unsupported
         (Printf.sprintf "output dataflow %s has no netlist template"
            (Tl_stt.Dataflow.to_string ti.Tl_stt.Design.dataflow)))

(* ------------------------------------------------------------------ *)

let build ?(rename = Fun.id) (design : Tl_stt.Design.t) ~rows ~cols =
  let sched =
    try Schedule.build design ~rows ~cols
    with Schedule.Unsupported msg -> raise (Unsupported msg)
  in
  let total = total_cycles sched ~rows design in
  let stmt = design.Tl_stt.Design.transform.Tl_stt.Transform.stmt in
  let shapes =
    List.map
      (fun (a : Tl_ir.Access.t) ->
        (a.Tl_ir.Access.tensor,
         Tl_ir.Access.shape a stmt.Tl_ir.Stmt.iters))
      (Tl_ir.Stmt.tensors stmt)
  in
  let ctx =
    { sched; total; rename; shapes; mems = []; inputs = [];
      seen_inputs = Hashtbl.create 8; out_locs = Hashtbl.create 64;
      banks = []; tally_reads = Hashtbl.create 4;
      tally_sys_link = Array.make total 0;
      tally_mc_link = Array.make total 0; struct_lines = [] }
  in
  (* structural preamble: grid, tensors, dataflows — everything that fixes
     the netlist shape beyond the table contents *)
  structural ctx
    (Printf.sprintf "grid %dx%d" sched.Schedule.rows sched.Schedule.cols);
  List.iteri
    (fun i (ti : Tl_stt.Design.tensor_info) ->
      structural ctx
        (Printf.sprintf "tensor %d %s %s %s" i
           (rename ti.Tl_stt.Design.access.Tl_ir.Access.tensor)
           (match ti.Tl_stt.Design.role with
            | Tl_stt.Design.Input -> "in"
            | Tl_stt.Design.Output -> "out")
           (Tl_stt.Dataflow.to_string ti.Tl_stt.Design.dataflow)))
    design.Tl_stt.Design.tensors;
  structural ctx
    (String.concat " "
       ("pes"
        :: List.map (fun (r, c) -> Printf.sprintf "%d,%d" r c)
             (active_pes ctx)));
  (* controller streams: done saturates the cycle counter at total-1 (so
     zero padding past the natural length is harmless), tick marks the
     last cycle of each pass *)
  bitmap_mem ctx "ctrl_done" [ total - 1 ];
  bitmap_mem ctx "ctrl_tick"
    (List.init sched.Schedule.passes (fun p ->
         sched.Schedule.preload + ((p + 1) * sched.Schedule.span) - 1));
  (* input tensors, then per-PE valid bitmaps, then the output — the same
     elaboration order as [Accel.generate] *)
  List.iter (fun ti -> build_input ctx ti) (Tl_stt.Design.input_infos design);
  List.iter
    (fun p ->
      bitmap_mem ctx (pos_name "valid" p)
        (List.map (fun ev -> ev.Schedule.cycle) (events_of ctx p)))
    (active_pes ctx);
  build_output ctx (Tl_stt.Design.output_info design);
  (* counter-increment images, in accel.ml's elaboration order: per-tensor
     reads (sorted), then the two link tallies.  Emitted unconditionally —
     the loader only consumes the ones the target netlist elaborated. *)
  Hashtbl.fold (fun t a acc -> (t, a) :: acc) ctx.tally_reads []
  |> List.sort compare
  |> List.iter (fun (t, a) ->
         add_mem ctx ~domain:Cycle ("ctr_rd_" ^ rename t ^ "_inc") a);
  add_mem ctx ~domain:Cycle "ctr_link_systolic_inc" ctx.tally_sys_link;
  add_mem ctx ~domain:Cycle "ctr_link_multicast_inc" ctx.tally_mc_link;
  let mems = List.rev ctx.mems in
  (* the structure signature appends the (sorted) schedule-memory name and
     domain set — counters excluded so a program compiled for a plain
     target also describes the counters-on netlist of the same core *)
  let mem_lines =
    List.filter_map
      (fun m ->
        if String.length m.m_name >= 4 && String.sub m.m_name 0 4 = "ctr_"
        then None
        else Some (Printf.sprintf "mem %s %s" m.m_name (domain_string m.m_domain)))
      mems
    |> List.sort compare
  in
  let bank_lines =
    List.rev_map (fun (name, _, _) -> "bank " ^ name) ctx.banks
    |> List.sort compare
  in
  let structure =
    String.concat "\n" (List.rev ctx.struct_lines @ mem_lines @ bank_lines)
  in
  let out_access = (Tl_stt.Design.output_info design).Tl_stt.Design.access in
  { l_design = design; l_rows = rows; l_cols = cols; l_total = total;
    l_passes = sched.Schedule.passes; l_events = sched.Schedule.event_count;
    l_structure = structure; l_mems = mems;
    l_inputs = List.rev ctx.inputs; l_banks = List.rev ctx.banks;
    l_out =
      Hashtbl.fold (fun idx loc acc -> (idx, loc) :: acc) ctx.out_locs []
      |> List.sort compare;
    l_out_shape = shape_of ctx out_access.Tl_ir.Access.tensor }

let structure_digest structure = Tl_stt.Signature.key_digest structure

let to_program ?name l =
  let name =
    match name with
    | Some n -> n
    | None -> l.l_design.Tl_stt.Design.name
  in
  { p_name = name; p_structure = l.l_structure; p_total = l.l_total;
    p_passes = l.l_passes; p_events = l.l_events;
    p_images =
      List.map (fun m -> (m.m_name, (m.m_domain, m.m_image))) l.l_mems;
    p_inputs = l.l_inputs; p_out = l.l_out; p_out_shape = l.l_out_shape }
