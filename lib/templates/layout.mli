(** Pure schedule-table computation: the images behind every schedule ROM
    of {!Accel.generate}, computed without elaborating hardware.

    [build design ~rows ~cols] re-runs the scheduling pass and produces,
    for each schedule-table memory of the corresponding netlist, its name
    and contents ({!field-l_mems}), plus the data-memory layout, the
    output-bank map and a canonical {e structure} string capturing the
    netlist shape independent of table contents.  Two designs with equal
    structure strings elaborate isomorphic netlists that differ only in
    table images and memory sizes — exactly the condition under which a
    program for one can run on a programmable netlist generated from the
    other (see {!Tl_compile}).

    Builders mirror [accel.ml] line for line; the correspondence is locked
    by a sync test comparing [build] output against the ROM images of a
    freshly generated circuit. *)

exception Unsupported of string
(** Same conditions as {!Accel.Unsupported} (missing template, footprint
    overflow, drain-chain/span conflict, collector overflow). *)

type domain = Cycle | Pass
(** Index domain of a schedule table: cycle-indexed tables have natural
    length [l_total]; pass-indexed ones [l_passes + 1]. *)

type envelope = {
  env_cycles : int;  (** max schedule length (cycle-table capacity) *)
  env_passes : int;  (** max pass count (pass tables hold [env_passes+1]) *)
  env_elems : int;   (** max elements per input data memory *)
  env_bank : int;    (** max cells per collector bank *)
}
(** Capacity envelope of a programmable netlist: every schedule memory is
    sized by these bounds (and addressed at envelope-derived widths), so
    any schedule fitting the envelope loads without re-elaboration. *)

type mem = { m_name : string; m_domain : domain; m_image : int array }

type input = {
  in_tensor : string;  (** request-side tensor name (environment key) *)
  in_mem : string;     (** target-side data-memory key *)
  in_elems : int;
  in_shape : int array;
}

type t = {
  l_design : Tl_stt.Design.t;
  l_rows : int;
  l_cols : int;
  l_total : int;   (** controller cycle count (matches [Accel.total_cycles]) *)
  l_passes : int;
  l_events : int;  (** MAC events (= statement domain size) *)
  l_structure : string;
  l_mems : mem list;
  l_inputs : input list;
  l_banks : (string * int * int) list;
      (** (bank name, declared capacity, cells used) *)
  l_out : (int list * (string * int)) list;
      (** output element index → (bank name, bank address), sorted *)
  l_out_shape : int array;
}

type program = {
  p_name : string;
  p_structure : string;
  p_total : int;
  p_passes : int;
  p_events : int;
  p_images : (string * (domain * int array)) list;
  p_inputs : input list;
  p_out : (int list * (string * int)) list;
  p_out_shape : int array;
}
(** A loadable program: the descriptor-memory images plus data-memory
    layout, detached from the design that produced it (serialised by
    {!Tl_compile.program_to_json}, loaded by {!Accel.load_program}). *)

val max_dt : Tl_stt.Design.t -> int
val total_cycles : Schedule.t -> rows:int -> Tl_stt.Design.t -> int
(** The controller cycle count [Accel.generate] uses for this schedule. *)

val build : ?rename:(string -> string) -> Tl_stt.Design.t ->
  rows:int -> cols:int -> t
(** Compute every schedule-table image for [design] on a [rows]×[cols]
    array.  [rename] maps the design's tensor names to the target
    netlist's (positional renaming when compiling a request whose tensors
    are named differently); memory names, counter names and [in_mem] use
    renamed names, while [in_tensor] keeps the request-side name.
    @raise Unsupported as {!Accel.generate} would. *)

val structure_digest : string -> string
(** Stable 32-hex digest of a structure string (for serialisation). *)

val to_program : ?name:string -> t -> program
(** Strip a layout down to its loadable program (default name: the
    design's dataflow name). *)

val domain_string : domain -> string
