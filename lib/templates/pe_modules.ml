open Tl_hw

let rec delay n s = if n <= 0 then s else delay (n - 1) (Signal.reg s)

let systolic_input ~dt ~din = (din, delay dt din)

let systolic_output ~dt ~psum_in ~contribution =
  delay dt Signal.(psum_in +: contribution)

let stationary_input ~load ~next = Signal.reg ~enable:load next

type stationary_output = { acc : Signal.t; shadow : Signal.t }

let stationary_output ~valid ~stage_start ~capture ~drain_shift ~contribution
    ~shadow_in =
  let open Signal in
  let w = width contribution in
  let accw = wire w in
  let zero = const ~width:w 0 in
  let fresh = mux2 valid contribution zero in
  (* acc_d is the stage total *including* the current cycle's MAC, so the
     shadow capture at the stage's last cycle doesn't lose the final
     contribution. *)
  let acc_d = mux2 stage_start fresh (accw +: fresh) in
  let acc = reg acc_d in
  assign accw acc;
  let shadow_d = mux2 capture acc_d shadow_in in
  let shadow = reg ~enable:(capture |: drain_shift) shadow_d in
  { acc; shadow }

let direct_input ~bus = bus

let tree_contribution ~valid ~contribution =
  let open Signal in
  mux2 valid contribution (const ~width:(width contribution) 0)
