(** The PE-internal module templates of Fig. 3 (a)–(f).

    Each tensor of a design contributes one of these modules to the PE,
    independent of the others; the PE is assembled by instantiating one
    module per tensor around the computation cell (§V-A).  All builders are
    pure netlist combinators over {!Tl_hw.Signal}. *)

open Tl_hw

val delay : int -> Signal.t -> Signal.t
(** [delay n s]: [n] registers in series ([n = 0] is the identity). *)

val systolic_input : dt:int -> din:Signal.t -> Signal.t * Signal.t
(** Fig. 3 (a): tensor data enters, is used combinationally by the cell this
    cycle and leaves for the neighbouring PE after [dt] cycles.
    Returns [(use, dout)]. *)

val systolic_output : dt:int -> psum_in:Signal.t -> contribution:Signal.t ->
  Signal.t
(** Fig. 3 (b): the partial sum from the upstream PE is combined with this
    PE's contribution and forwarded after [dt] cycles. *)

val stationary_input : load:Signal.t -> next:Signal.t -> Signal.t
(** Fig. 3 (c): double-buffered stationary operand.  [next] is the value
    distributed for the upcoming execution stage; it is latched into the
    active register when [load] fires (stage boundary), and held for the
    whole stage. *)

type stationary_output = {
  acc : Signal.t;       (** the in-PE accumulator *)
  shadow : Signal.t;    (** drain register (double buffer) *)
}

val stationary_output : valid:Signal.t -> stage_start:Signal.t ->
  capture:Signal.t -> drain_shift:Signal.t -> contribution:Signal.t ->
  shadow_in:Signal.t -> stationary_output
(** Fig. 3 (d): accumulate [contribution] while [valid]; on [capture]
    (stage boundary) the total moves to the [shadow] register and the
    accumulator restarts; while [drain_shift] the shadow registers shift
    toward the array edge ([shadow_in] is the upstream neighbour's shadow),
    overlapping the next stage's computation. *)

val direct_input : bus:Signal.t -> Signal.t
(** Fig. 3 (e): multicast / unicast input — data is consumed straight off
    the bus (or bank port). *)

val tree_contribution : valid:Signal.t -> contribution:Signal.t -> Signal.t
(** Fig. 3 (f): multicast output — the PE exposes its (validity-gated)
    partial result to the reduction tree. *)
