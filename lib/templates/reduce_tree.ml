let rec build = function
  | [] -> invalid_arg "Reduce_tree.build: empty"
  | [ s ] -> s
  | inputs ->
    let rec pair = function
      | [] -> []
      | [ x ] -> [ x ]
      | a :: b :: rest -> Tl_hw.Signal.(a +: b) :: pair rest
    in
    build (pair inputs)

let depth n =
  if n <= 0 then invalid_arg "Reduce_tree.depth";
  let rec go n acc = if n <= 1 then acc else go ((n + 1) / 2) (acc + 1) in
  go n 0
