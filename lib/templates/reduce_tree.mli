(** Balanced adder reduction trees (Fig. 4 (d)).

    Used for multicast *output* dataflows where several PEs produce partial
    results of the same tensor element in the same cycle. *)

val build : Tl_hw.Signal.t list -> Tl_hw.Signal.t
(** Balanced binary adder tree; depth [ceil(log2 n)].
    @raise Invalid_argument on the empty list or mixed widths. *)

val depth : int -> int
(** Tree depth for [n] leaves. *)
