exception Unsupported of string

type event = {
  cycle : int;
  pass : int;
  pe : Geometry.pos;
  x : int array;
}

type t = {
  design : Tl_stt.Design.t;
  rows : int;
  cols : int;
  offset : int array;
  t_min : int;
  span : int;
  passes : int;
  preload : int;
  compute_end : int;
  by_pe : event list array array;
  event_count : int;
}

(* Shared elaboration geometry for {!build} and {!frame}.  The space/time
   maps are linear, so their extrema over the box domain are attained
   coordinate-wise — no domain sweep is needed to find the footprint. *)
type geom = {
  g_design : Tl_stt.Design.t;
  g_rows : int;
  g_cols : int;
  g_depth : int;
  g_selected : int array;
  g_sel_ext : int array;
  g_unsel : int array;
  g_unsel_ext : int array;
  g_row_r : int array;  (* space-row coefficients over selected iters *)
  g_row_c : int array;  (* all-zero for 1-D arrays *)
  g_row_t : int array;
  g_offset : int array;
  g_t_min : int;
  g_span : int;
  g_passes : int;
  g_preload : int;
}

let row_bounds row ext =
  let lo = ref 0 and hi = ref 0 in
  Array.iteri
    (fun j c ->
      let contrib = c * (ext.(j) - 1) in
      if contrib >= 0 then hi := !hi + contrib else lo := !lo + contrib)
    row;
  (!lo, !hi)

let geometry design ~rows ~cols =
  let transform = design.Tl_stt.Design.transform in
  let sd = Tl_stt.Transform.space_dims transform in
  if sd <> 1 && sd <> 2 then
    raise (Unsupported "Schedule.build: only 1-D and 2-D PE arrays");
  if sd = 1 && cols <> 1 then
    raise (Unsupported "Schedule.build: 1-D arrays use cols = 1");
  let stmt = transform.Tl_stt.Transform.stmt in
  let depth = Tl_ir.Stmt.depth stmt in
  let selected = transform.Tl_stt.Transform.selected in
  let sel_ext = Tl_stt.Transform.selected_extents transform in
  let unselected =
    List.filter (fun i -> not (Array.mem i selected)) (List.init depth Fun.id)
  in
  let unsel_ext =
    let all = Tl_ir.Stmt.extents stmt in
    List.map (fun i -> all.(i)) unselected
  in
  let passes = List.fold_left ( * ) 1 unsel_ext in
  let t_min, t_max = Tl_stt.Transform.time_bounds transform in
  let span = t_max - t_min + 1 in
  let preload = 1 in
  let tm = transform.Tl_stt.Transform.imatrix in
  let n_sel = Array.length selected in
  let row_r = tm.(0) in
  let row_c = if sd = 1 then Array.make n_sel 0 else tm.(1) in
  let row_t = if sd = 1 then tm.(1) else tm.(2) in
  let min_r, max_r = row_bounds row_r sel_ext in
  let min_c, max_c = row_bounds row_c sel_ext in
  if max_r - min_r + 1 > rows || max_c - min_c + 1 > cols then
    raise
      (Unsupported
         (Printf.sprintf
            "Schedule.build: footprint %dx%d exceeds %dx%d array"
            (max_r - min_r + 1) (max_c - min_c + 1) rows cols));
  { g_design = design; g_rows = rows; g_cols = cols; g_depth = depth;
    g_selected = selected; g_sel_ext = sel_ext;
    g_unsel = Array.of_list unselected;
    g_unsel_ext = Array.of_list unsel_ext;
    g_row_r = row_r; g_row_c = row_c; g_row_t = row_t;
    g_offset = [| -min_r; -min_c |];
    g_t_min = t_min; g_span = span; g_passes = passes; g_preload = preload }

(* Drive [k] over every event in build order (passes lexicographic over
   unselected iterators, then the selected box lexicographically), keeping
   the space-time coordinates incrementally: advancing selected dimension
   [d] adds column [d] of the STT to [(r, c, t)].  The iteration vector
   passed to [k] is reused between calls. *)
let iter_geom g k =
  let x = Array.make g.g_depth 0 in
  let n_sel = Array.length g.g_selected in
  let n_unsel = Array.length g.g_unsel in
  let off_r = g.g_offset.(0) and off_c = g.g_offset.(1) in
  let rec sel_loop d r c tt pass base =
    if d = n_sel then k ~pass ~cycle:(base + tt) ~r ~c x
    else begin
      let si = g.g_selected.(d) in
      let dr = g.g_row_r.(d) and dc = g.g_row_c.(d) and dt = g.g_row_t.(d) in
      let r = ref r and c = ref c and tt = ref tt in
      for v = 0 to g.g_sel_ext.(d) - 1 do
        x.(si) <- v;
        sel_loop (d + 1) !r !c !tt pass base;
        r := !r + dr;
        c := !c + dc;
        tt := !tt + dt
      done
    end
  in
  let rec passes_loop d pass =
    if d = n_unsel then begin
      let base = g.g_preload + (pass * g.g_span) - g.g_t_min in
      sel_loop 0 off_r off_c 0 pass base;
      pass + 1
    end
    else begin
      let pass = ref pass in
      for v = 0 to g.g_unsel_ext.(d) - 1 do
        x.(g.g_unsel.(d)) <- v;
        pass := passes_loop (d + 1) !pass
      done;
      !pass
    end
  in
  ignore (passes_loop 0 0)

let build design ~rows ~cols =
  let g = geometry design ~rows ~cols in
  let by_pe = Array.init rows (fun _ -> Array.make cols []) in
  let count = ref 0 in
  let span = g.g_span and t_min = g.g_t_min and preload = g.g_preload in
  iter_geom g (fun ~pass ~cycle ~r ~c x ->
      let ev = { cycle; pass; pe = (r, c); x = Array.copy x } in
      by_pe.(r).(c) <- ev :: by_pe.(r).(c);
      incr count);
  Array.iter
    (fun row ->
      Array.iteri
        (fun c evs ->
          row.(c) <-
            List.sort (fun a b -> compare a.cycle b.cycle) (List.rev evs))
        row)
    by_pe;
  { design; rows; cols; offset = g.g_offset; t_min; span;
    passes = g.g_passes; preload;
    compute_end = preload + (g.g_passes * span); by_pe; event_count = !count }

(* ------------------------------------------------------------------ *)
(* Streaming mode: the same schedule as {!build}, without materialising
   any event.  [iter_events] re-runs the elaboration loop and hands each
   (pass, cycle, pe, x) slot to a visitor; the iteration vector is REUSED
   between calls and must not be retained or mutated by the visitor. *)

type frame = {
  f_design : Tl_stt.Design.t;
  f_rows : int;
  f_cols : int;
  f_offset : int array;
  f_t_min : int;
  f_span : int;
  f_passes : int;
  f_preload : int;
  f_compute_end : int;
  f_event_count : int;
  f_geom : geom;
}

let frame design ~rows ~cols =
  let g = geometry design ~rows ~cols in
  let sel_volume = Array.fold_left ( * ) 1 g.g_sel_ext in
  { f_design = design; f_rows = rows; f_cols = cols; f_offset = g.g_offset;
    f_t_min = g.g_t_min; f_span = g.g_span; f_passes = g.g_passes;
    f_preload = g.g_preload;
    f_compute_end = g.g_preload + (g.g_passes * g.g_span);
    f_event_count = g.g_passes * sel_volume;
    f_geom = g }

let iter_events fr k = iter_geom fr.f_geom k

let tensor_index _t access ev = Tl_ir.Access.index access ev.x

let events t =
  let all = ref [] in
  for r = t.rows - 1 downto 0 do
    for c = t.cols - 1 downto 0 do
      all := List.rev_append (List.rev t.by_pe.(r).(c)) !all
    done
  done;
  List.stable_sort (fun a b -> compare (a.cycle, a.pe) (b.cycle, b.pe)) !all

let pe_active t (r, c) = t.by_pe.(r).(c) <> []
