exception Unsupported of string

type event = {
  cycle : int;
  pass : int;
  pe : Geometry.pos;
  x : int array;
}

type t = {
  design : Tl_stt.Design.t;
  rows : int;
  cols : int;
  offset : int array;
  t_min : int;
  span : int;
  passes : int;
  preload : int;
  compute_end : int;
  by_pe : event list array array;
  event_count : int;
}

let build design ~rows ~cols =
  let transform = design.Tl_stt.Design.transform in
  let sd = Tl_stt.Transform.space_dims transform in
  if sd <> 1 && sd <> 2 then
    raise (Unsupported "Schedule.build: only 1-D and 2-D PE arrays");
  if sd = 1 && cols <> 1 then
    raise (Unsupported "Schedule.build: 1-D arrays use cols = 1");
  let stmt = transform.Tl_stt.Transform.stmt in
  let depth = Tl_ir.Stmt.depth stmt in
  let selected = transform.Tl_stt.Transform.selected in
  let sel_ext = Tl_stt.Transform.selected_extents transform in
  let unselected =
    List.filter (fun i -> not (Array.mem i selected)) (List.init depth Fun.id)
  in
  let unsel_ext =
    let all = Tl_ir.Stmt.extents stmt in
    List.map (fun i -> all.(i)) unselected
  in
  let passes = List.fold_left ( * ) 1 unsel_ext in
  let t_min, t_max = Tl_stt.Transform.time_bounds transform in
  let span = t_max - t_min + 1 in
  let preload = 1 in
  (* integer fast path for the (hot) space-time mapping *)
  let tm = Tl_linalg.Mat.to_int_rows transform.Tl_stt.Transform.matrix in
  let tm = Array.of_list (List.map Array.of_list tm) in
  let n_sel = Array.length selected in
  let apply_fast x_sel =
    let dot row =
      let acc = ref 0 in
      for j = 0 to n_sel - 1 do
        acc := !acc + (row.(j) * x_sel.(j))
      done;
      !acc
    in
    if sd = 1 then ([| dot tm.(0); 0 |], dot tm.(1))
    else ([| dot tm.(0); dot tm.(1) |], dot tm.(2))
  in
  (* find the footprint offset: min raw space coordinates *)
  let min_r = ref max_int and min_c = ref max_int in
  let max_r = ref min_int and max_c = ref min_int in
  let iter_selected f =
    let n = Array.length selected in
    let x_sel = Array.make n 0 in
    let rec go d =
      if d = n then f x_sel
      else
        for v = 0 to sel_ext.(d) - 1 do
          x_sel.(d) <- v;
          go (d + 1)
        done
    in
    go 0
  in
  iter_selected (fun x_sel ->
      let p, _ = apply_fast x_sel in
      if p.(0) < !min_r then min_r := p.(0);
      if p.(0) > !max_r then max_r := p.(0);
      if p.(1) < !min_c then min_c := p.(1);
      if p.(1) > !max_c then max_c := p.(1));
  let offset = [| - !min_r; - !min_c |] in
  if !max_r - !min_r + 1 > rows || !max_c - !min_c + 1 > cols then
    raise
      (Unsupported
         (Printf.sprintf
            "Schedule.build: footprint %dx%d exceeds %dx%d array"
            (!max_r - !min_r + 1) (!max_c - !min_c + 1) rows cols));
  (* enumerate passes (lexicographic over unselected iterators) *)
  let by_pe = Array.init rows (fun _ -> Array.make cols []) in
  let count = ref 0 in
  let unsel = Array.of_list unselected in
  let unsel_ext = Array.of_list unsel_ext in
  let n_unsel = Array.length unsel in
  let x = Array.make depth 0 in
  let rec passes_loop d pass =
    if d = n_unsel then begin
      iter_selected (fun x_sel ->
          Array.iteri (fun i si -> x.(si) <- x_sel.(i)) selected;
          let p, tm = apply_fast x_sel in
          let r = p.(0) + offset.(0) and c = p.(1) + offset.(1) in
          let cycle = preload + (pass * span) + (tm - t_min) in
          let ev = { cycle; pass; pe = (r, c); x = Array.copy x } in
          by_pe.(r).(c) <- ev :: by_pe.(r).(c);
          incr count);
      pass + 1
    end
    else begin
      let pass = ref pass in
      for v = 0 to unsel_ext.(d) - 1 do
        x.(unsel.(d)) <- v;
        pass := passes_loop (d + 1) !pass
      done;
      !pass
    end
  in
  let final_pass = passes_loop 0 0 in
  assert (final_pass = passes);
  Array.iter
    (fun row ->
      Array.iteri
        (fun c evs ->
          row.(c) <-
            List.sort (fun a b -> compare a.cycle b.cycle) (List.rev evs))
        row)
    by_pe;
  { design; rows; cols; offset; t_min; span; passes; preload;
    compute_end = preload + (passes * span); by_pe; event_count = !count }

let tensor_index _t access ev = Tl_ir.Access.index access ev.x

let events t =
  let all = ref [] in
  for r = t.rows - 1 downto 0 do
    for c = t.cols - 1 downto 0 do
      all := List.rev_append (List.rev t.by_pe.(r).(c)) !all
    done
  done;
  List.stable_sort (fun a b -> compare (a.cycle, a.pe) (b.cycle, b.pe)) !all

let pe_active t (r, c) = t.by_pe.(r).(c) <> []
