(** Elaboration-time execution schedule.

    Maps every iteration of the full loop nest to a (PE, cycle) slot: the
    selected iterators go through the STT, the unselected iterators are
    serialised into passes of [span] cycles each.  Space coordinates are
    translated so the footprint starts at (0,0); elaboration fails if the
    footprint exceeds the array.

    Cycle layout: [preload] cycles of stationary-data preload, then
    [passes × span] compute cycles (pass [s] spans
    [preload + s*span .. preload + (s+1)*span - 1]). *)

exception Unsupported of string

type event = {
  cycle : int;
  pass : int;
  pe : Geometry.pos;
  x : int array;  (** full iteration vector (copy, nest order) *)
}

type t = {
  design : Tl_stt.Design.t;
  rows : int;
  cols : int;
  offset : int array;  (** translation added to raw space coordinates *)
  t_min : int;
  span : int;   (** schedule length of one pass *)
  passes : int; (** product of unselected extents *)
  preload : int;
  compute_end : int;  (** preload + passes * span *)
  by_pe : event list array array;  (** [rows][cols], ascending cycle *)
  event_count : int;
}

val build : Tl_stt.Design.t -> rows:int -> cols:int -> t
(** @raise Unsupported when the space footprint does not fit the array. *)

type frame = private {
  f_design : Tl_stt.Design.t;
  f_rows : int;
  f_cols : int;
  f_offset : int array;
  f_t_min : int;
  f_span : int;
  f_passes : int;
  f_preload : int;
  f_compute_end : int;
  f_event_count : int;
  f_geom : geom;
}
(** The geometry of a schedule without its events: everything {!t} carries
    except [by_pe].  Identical field values to the corresponding {!build}. *)

and geom

val frame : Tl_stt.Design.t -> rows:int -> cols:int -> frame
(** @raise Unsupported under exactly the conditions of {!build}. *)

val iter_events :
  frame -> (pass:int -> cycle:int -> r:int -> c:int -> int array -> unit) ->
  unit
(** Visit every event of the schedule in elaboration order (passes
    lexicographic over the unselected iterators, the selected box
    lexicographically inside each pass) without allocating per event.  The
    int array is the full iteration vector in nest order; it is {b reused
    between calls} — visitors must copy it if they retain it.  The visited
    multiset of (pass, cycle, pe) slots equals {!build}'s events. *)

val tensor_index : t -> Tl_ir.Access.t -> event -> int array
(** Tensor element accessed by an event. *)

val events : t -> event list
(** All events sorted by cycle (ties by PE). *)

val pe_active : t -> Geometry.pos -> bool
