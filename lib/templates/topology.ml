type link_kind =
  | Chain of { dp : int array; dt : int }
  | Bus of { dp : int array }
  | Tree of { dp : int array; depth : int }
  | Global_bus
  | Direct
  | Stage_load
  | Drain of { length : int }

type tensor_topology = {
  tensor : string;
  role : Tl_stt.Design.role;
  links : link_kind list;
  lines : int;
  banks : int;
}

type t = {
  design_name : string;
  rows : int;
  cols : int;
  tensors : tensor_topology list;
}

let line_count rows cols d =
  let total = rows * cols in
  let steps_r = if d.(0) = 0 then max_int else (rows - 1) / abs d.(0) in
  let steps_c = if d.(1) = 0 then max_int else (cols - 1) / abs d.(1) in
  let len = 1 + min steps_r steps_c in
  (total + len - 1) / len

let line_length rows cols d =
  let total = rows * cols in
  total / line_count rows cols d

let tree_depth n =
  let rec go n acc = if n <= 1 then acc else go ((n + 1) / 2) (acc + 1) in
  go n 0

let describe ?(rows = 16) ?(cols = 16) (design : Tl_stt.Design.t) =
  let tensor (ti : Tl_stt.Design.tensor_info) =
    let name = ti.Tl_stt.Design.access.Tl_ir.Access.tensor in
    let role = ti.Tl_stt.Design.role in
    let mk links lines banks = { tensor = name; role; links; lines; banks } in
    match (role, ti.Tl_stt.Design.dataflow) with
    | _, Tl_stt.Dataflow.Unicast -> mk [ Direct ] (rows * cols) (rows * cols)
    | Tl_stt.Design.Input, Tl_stt.Dataflow.Stationary _ ->
      mk [ Stage_load ] (rows * cols) 1
    | Tl_stt.Design.Output, Tl_stt.Dataflow.Stationary _ ->
      mk [ Stage_load; Drain { length = rows } ] cols cols
    | _, Tl_stt.Dataflow.Systolic { dp; dt } ->
      let lines = line_count rows cols dp in
      mk [ Chain { dp; dt } ] lines lines
    | Tl_stt.Design.Input, Tl_stt.Dataflow.Multicast { dp } ->
      let lines = line_count rows cols dp in
      mk [ Bus { dp } ] lines lines
    | Tl_stt.Design.Output, Tl_stt.Dataflow.Multicast { dp } ->
      let lines = line_count rows cols dp in
      mk [ Tree { dp; depth = tree_depth (line_length rows cols dp) } ] lines
        lines
    | _, Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast ->
      mk [ Global_bus ] 1 1
    | Tl_stt.Design.Input,
      Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Multicast_stationary { multicast })
      ->
      let lines = line_count rows cols multicast in
      mk [ Bus { dp = multicast }; Stage_load ] lines lines
    | Tl_stt.Design.Output,
      Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Multicast_stationary { multicast })
      ->
      let lines = line_count rows cols multicast in
      mk
        [ Tree { dp = multicast;
                 depth = tree_depth (line_length rows cols multicast) };
          Stage_load ]
        lines lines
    | _,
      Tl_stt.Dataflow.Reuse2d
        (Tl_stt.Dataflow.Systolic_multicast { multicast; systolic }) ->
      let lines = line_count rows cols multicast in
      mk
        [ Bus { dp = multicast };
          Chain { dp = systolic.Tl_stt.Dataflow.dp;
                  dt = systolic.Tl_stt.Dataflow.dt } ]
        lines lines
    | _, Tl_stt.Dataflow.Reuse_full -> mk [ Global_bus; Stage_load ] 1 1
  in
  { design_name = design.Tl_stt.Design.name;
    rows;
    cols;
    tensors = List.map tensor design.Tl_stt.Design.tensors }

let direction_name d =
  match (d.(0), d.(1)) with
  | 0, (1 | -1) -> "horizontal"
  | (1 | -1), 0 -> "vertical"
  | (1 | -1), (1 | -1) -> "diagonal"
  | r, c -> Printf.sprintf "(%d,%d)" r c

let pp_link ppf = function
  | Chain { dp; dt } ->
    Format.fprintf ppf "systolic chain, %s, %d reg%s/hop" (direction_name dp)
      dt
      (if dt = 1 then "" else "s")
  | Bus { dp } -> Format.fprintf ppf "multicast bus, %s" (direction_name dp)
  | Tree { dp; depth } ->
    Format.fprintf ppf "reduction tree, %s, depth %d" (direction_name dp)
      depth
  | Global_bus -> Format.fprintf ppf "array-wide broadcast"
  | Direct -> Format.fprintf ppf "per-PE bank port"
  | Stage_load -> Format.fprintf ppf "double-buffer stage load"
  | Drain { length } -> Format.fprintf ppf "drain chain, length %d" length

let pp ppf t =
  Format.fprintf ppf "@[<v>interconnect of %s on %dx%d:@," t.design_name
    t.rows t.cols;
  List.iter
    (fun tt ->
      Format.fprintf ppf "  %s %-3s (%d lines, %d banks):"
        (match tt.role with
         | Tl_stt.Design.Input -> "in "
         | Tl_stt.Design.Output -> "out")
        tt.tensor tt.lines tt.banks;
      List.iter (fun l -> Format.fprintf ppf "@,      %a" pp_link l) tt.links;
      Format.fprintf ppf "@,")
    t.tensors;
  Format.fprintf ppf "@]"

(* ---- Fig. 4-style ASCII diagrams ---- *)

let arrow dp =
  match (dp.(0), dp.(1)) with
  | 0, c when c > 0 -> ('>', ' ')   (* horizontal flow: between cols *)
  | 0, _ -> ('<', ' ')
  | r, 0 when r > 0 -> (' ', 'v')   (* vertical flow: between rows *)
  | _, 0 -> (' ', '^')
  | r, c when r * c > 0 -> (' ', '\\')
  | _ -> (' ', '/')

let diagram_of_tensor ~rows ~cols (ti : Tl_stt.Design.tensor_info) =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b ("      " ^ s ^ "\n")) fmt in
  let grid ~cell ~hsep ~vsep =
    for r = 0 to rows - 1 do
      let row =
        String.concat hsep (List.init cols (fun c -> cell r c))
      in
      line "%s" row;
      if r < rows - 1 && vsep <> "" then
        line "%s"
          (String.concat "   "
             (List.init cols (fun _ -> vsep)))
    done
  in
  (match ti.Tl_stt.Design.dataflow with
   | Tl_stt.Dataflow.Systolic { dp; dt = _ } ->
     let h, v = arrow dp in
     let hsep = if h = ' ' then "   " else Printf.sprintf " %c " h in
     let vsep = if v = ' ' then "" else String.make 1 v in
     grid ~cell:(fun _ _ -> "o") ~hsep ~vsep
   | Tl_stt.Dataflow.Multicast { dp } ->
     if ti.Tl_stt.Design.role = Tl_stt.Design.Output then begin
       (* reduction tree per line *)
       if dp.(0) = 0 then
         grid ~cell:(fun _ _ -> "o") ~hsep:"-+-" ~vsep:"" |> fun () ->
         line "%s" (String.make ((4 * cols) - 3) '-' ^ "> [SUM] per row")
       else begin
         grid ~cell:(fun _ _ -> "o") ~hsep:"   " ~vsep:"|";
         line "%s" (String.concat "   " (List.init cols (fun _ -> "+")));
         line "[SUM] per column"
       end
     end
     else if dp.(0) = 0 then begin
       line "[bank] == broadcast along each row";
       grid ~cell:(fun _ _ -> "o") ~hsep:"==" ~vsep:""
     end
     else if dp.(1) = 0 then begin
       line "[bank] per column, broadcast downward";
       grid ~cell:(fun _ _ -> "o") ~hsep:"   " ~vsep:"|"
     end
     else begin
       line "[bank] per diagonal, broadcast along %s"
         (direction_name dp);
       grid ~cell:(fun _ _ -> "o") ~hsep:"   " ~vsep:"\\"
     end
   | Tl_stt.Dataflow.Stationary _ ->
     (if ti.Tl_stt.Design.role = Tl_stt.Design.Output then
        line "accumulates in place; drained by column at stage end"
      else line "held in PE for the whole stage (double-buffered)");
     grid ~cell:(fun _ _ -> "[o]") ~hsep:" " ~vsep:""
   | Tl_stt.Dataflow.Unicast ->
     line "private bank port per PE";
     grid ~cell:(fun _ _ -> "o*") ~hsep:" " ~vsep:""
   | Tl_stt.Dataflow.Reuse2d Tl_stt.Dataflow.Broadcast ->
     line "one value to every PE each cycle";
     grid ~cell:(fun _ _ -> "o") ~hsep:"=" ~vsep:""
   | Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Multicast_stationary { multicast }) ->
     line "broadcast along %s, then held in PE" (direction_name multicast);
     grid ~cell:(fun _ _ -> "[o]") ~hsep:"=" ~vsep:""
   | Tl_stt.Dataflow.Reuse2d (Tl_stt.Dataflow.Systolic_multicast { multicast; systolic }) ->
     line "broadcast along %s into chains along %s"
       (direction_name multicast)
       (direction_name systolic.Tl_stt.Dataflow.dp);
     grid ~cell:(fun _ _ -> "o") ~hsep:" > " ~vsep:""
   | Tl_stt.Dataflow.Reuse_full ->
     line "single element broadcast once";
     grid ~cell:(fun _ _ -> "o") ~hsep:" " ~vsep:"");
  Buffer.contents b

let pp_diagram ?(rows = 4) ?(cols = 4) ppf (design : Tl_stt.Design.t) =
  Format.fprintf ppf "@[<v>%s on a %dx%d array:@,"
    design.Tl_stt.Design.name rows cols;
  List.iter
    (fun (ti : Tl_stt.Design.tensor_info) ->
      Format.fprintf ppf "  %s %s: %s@,"
        (match ti.Tl_stt.Design.role with
         | Tl_stt.Design.Input -> "input "
         | Tl_stt.Design.Output -> "output")
        ti.Tl_stt.Design.access.Tl_ir.Access.tensor
        (Tl_stt.Dataflow.to_string ti.Tl_stt.Design.dataflow);
      Format.pp_print_string ppf (diagram_of_tensor ~rows ~cols ti))
    design.Tl_stt.Design.tensors;
  Format.fprintf ppf "@]"
