(** Interconnection-topology summary (Fig. 3 (2) / Fig. 4).

    Describes, per tensor, the concrete on-chip network the generator
    builds on a given array: systolic chains with their direction and
    register depth, multicast buses per line (horizontal / vertical /
    diagonal), reduction trees with their depth, drain chains, unicast
    bank ports, and the memory banks each group of PEs is assigned.
    Purely analytic (no elaboration), so it also serves the CLI and the
    documentation examples. *)

type link_kind =
  | Chain of { dp : int array; dt : int }
      (** neighbour-to-neighbour forwarding, [dt] registers per hop *)
  | Bus of { dp : int array }  (** same-cycle fan-out along a line *)
  | Tree of { dp : int array; depth : int }  (** reduction tree per line *)
  | Global_bus  (** array-wide broadcast *)
  | Direct  (** per-PE bank port (unicast) *)
  | Stage_load  (** stationary double-buffer load network *)
  | Drain of { length : int }  (** stationary-output drain chain *)

type tensor_topology = {
  tensor : string;
  role : Tl_stt.Design.role;
  links : link_kind list;
  lines : int;   (** independent chains / buses / trees *)
  banks : int;   (** memory banks feeding or fed by this tensor *)
}

type t = {
  design_name : string;
  rows : int;
  cols : int;
  tensors : tensor_topology list;
}

val describe : ?rows:int -> ?cols:int -> Tl_stt.Design.t -> t
val direction_name : int array -> string
(** "horizontal", "vertical", "diagonal", or the raw vector. *)

val pp : Format.formatter -> t -> unit

val pp_diagram : ?rows:int -> ?cols:int -> Format.formatter ->
  Tl_stt.Design.t -> unit
(** ASCII rendering of the per-tensor interconnect on a small array (the
    Fig. 4 artefact): systolic arrows, multicast buses, reduction trees,
    stationary boxes, unicast ports. *)
