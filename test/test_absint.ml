(* Abstract interpretation: Av transfer soundness (brute force over small
   widths), engine fixpoints, the L200-L204 proof rules positive and
   negative, narrowing equivalence, SARIF export, and the enriched
   width-mismatch diagnostics. *)

open Tensorlib
module Av = Absint.Av
module Engine = Absint.Engine
module Stream = Absint.Stream
module Proof = Absint.Proof

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub hay i nn = needle then true
    else go (i + 1)
  in
  go 0

(* ---------------- Av: brute-force transfer soundness ---------------- *)

(* An abstract value covering exactly a set of width-[w] concrete values
   is the join of their singletons; every transfer output must contain the
   concrete operation applied to every pair of members. *)
let av_of_set w = function
  | [] -> invalid_arg "av_of_set"
  | v :: rest ->
    List.fold_left
      (fun acc x -> Av.join acc (Av.const ~width:w x))
      (Av.const ~width:w v) rest

let random_set rng w =
  let n = 1 + Random.State.int rng 3 in
  List.init n (fun _ -> Random.State.int rng (1 lsl w))

let check_mem what v av =
  if not (Av.mem v av) then
    Alcotest.failf "%s: %d not in %s" what v
      (Format.asprintf "%a" Av.pp av)

let test_av_soundness () =
  let rng = Random.State.make [| 42 |] in
  let w = 4 in
  let m = (1 lsl w) - 1 in
  for _ = 1 to 300 do
    let xs = random_set rng w and ys = random_set rng w in
    let a = av_of_set w xs and b = av_of_set w ys in
    let binops =
      [ ("add", Av.add, fun x y -> (x + y) land m);
        ("sub", Av.sub, fun x y -> (x - y) land m);
        ("mul", Av.mul, fun x y -> x * y land m);
        ("and", Av.logand, ( land ));
        ("or", Av.logor, ( lor ));
        ("xor", Av.logxor, ( lxor ));
        ("eq", Av.eq, fun x y -> if x = y then 1 else 0);
        ("ult", Av.ult, fun x y -> if x < y then 1 else 0);
        ("slt", Av.slt,
         fun x y ->
           if Signal.to_signed w x < Signal.to_signed w y then 1 else 0) ]
    in
    List.iter
      (fun (name, abst, conc) ->
        let r = abst a b in
        List.iter
          (fun x -> List.iter (fun y -> check_mem name (conc x y) r) ys)
          xs)
      binops;
    let n = Random.State.int rng w in
    List.iter
      (fun x ->
        check_mem "not" (lnot x land m) (Av.lognot a);
        check_mem "shl" (x lsl n land m) (Av.shl a n);
        check_mem "shr" (x lsr n) (Av.shr a n);
        check_mem "sra" (Signal.to_signed w x asr n land m) (Av.sra a n);
        check_mem "sext"
          (Signal.mask_to_width 8 (Signal.to_signed w x))
          (Av.sext ~width:8 a);
        check_mem "repl" ((x lsl w) lor x) (Av.repl a 2);
        let hi = 1 + Random.State.int rng (w - 1) in
        let lo = Random.State.int rng (hi + 1) in
        check_mem "select"
          ((x lsr lo) land ((1 lsl (hi - lo + 1)) - 1))
          (Av.select a ~hi ~lo))
      xs;
    List.iter
      (fun x ->
        List.iter
          (fun y ->
            check_mem "concat" ((x lsl w) lor y) (Av.concat a b);
            (* mux joins both arms under an unknown select *)
            let r = Av.mux (Av.top 1) a b in
            check_mem "mux/1" x r;
            check_mem "mux/0" y r)
          ys)
      xs;
    (* join covers the union; meet covers the intersection *)
    let j = Av.join a b in
    List.iter (fun x -> check_mem "join" x j) (xs @ ys);
    List.iter
      (fun x -> if List.mem x ys then check_mem "meet" x (Av.meet a b))
      xs
  done

(* ---------------- engine: fixpoint on a masked counter -------------- *)

let test_engine_counter () =
  let open Signal in
  let w = wire 4 in
  let cnt = reg w -- "cnt" in
  assign w ((cnt +: const ~width:4 1) &: const ~width:4 7);
  let c = Circuit.create ~name:"ctr" ~outputs:[ ("o", cnt) ] in
  let e = Engine.run c in
  let av = Engine.value e cnt in
  Alcotest.(check bool) "cnt <= 7" true (av.Av.uhi <= 7);
  Alcotest.(check bool) "cnt >= 0" true (av.Av.ulo = 0);
  Alcotest.(check bool) "8 not member" false (Av.mem 8 av);
  Alcotest.(check bool) "7 member" true (Av.mem 7 av)

(* control-slice classification and periodicity *)
let test_stream_slice () =
  let open Signal in
  let w = wire 4 in
  let cnt = reg w -- "c" in
  assign w (mux2 (eq cnt (const ~width:4 15)) cnt (cnt +: const ~width:4 1));
  let x = input "x" 4 in
  let tainted = cnt +: x in
  let c =
    Circuit.create ~name:"s" ~outputs:[ ("o", tainted); ("c", cnt) ]
  in
  let slice = Stream.build c in
  Alcotest.(check bool) "counter in slice" true (Stream.in_slice slice cnt);
  Alcotest.(check bool) "input-dependent out" false
    (Stream.in_slice slice tainted);
  let run = Stream.record slice ~cycles:20 ~track:[ cnt ] in
  (match Stream.values run cnt with
   | Some arr ->
     Alcotest.(check int) "cnt@3" 3 arr.(3);
     Alcotest.(check int) "cnt@19 saturated" 15 arr.(19)
   | None -> Alcotest.fail "no stream");
  match run.Stream.repeat with
  | Some (c1, c2) ->
    Alcotest.(check bool) "terminal fixpoint period 1" true (c2 - c1 = 1)
  | None -> Alcotest.fail "no repeating state"

(* ---------------- proof rules: positives and negatives -------------- *)

let has_rule rule fs =
  List.exists (fun (f : Lint.Finding.t) -> f.Lint.Finding.rule = rule) fs

let test_l200_overflowing_acc () =
  (* 4-bit accumulator += 3 forever: never provably wrap-free *)
  let open Signal in
  let w = wire 4 in
  let acc = reg w -- "acc" in
  assign w (acc +: const ~width:4 3);
  let c = Circuit.create ~name:"ovf" ~outputs:[ ("o", acc) ] in
  let r = Proof.analyze ~cycles:8 c in
  Alcotest.(check bool) "L200 emitted" true (has_rule "L200" r.Proof.findings);
  Alcotest.(check bool) "gate trips" true (Proof.gate r.Proof.findings <> [])

let scheduled_bank ~we_data ~addr_data =
  (* saturating 4-bit cycle counter addressing a pair of schedule roms
     that drive a size-8 bank's write port *)
  let open Signal in
  let w = wire 4 in
  let cnt = reg w -- "cyc" in
  assign w (mux2 (eq cnt (const ~width:4 15)) cnt (cnt +: const ~width:4 1));
  let we_rom = rom ~name:"we_rom" ~width:1 we_data in
  let addr_rom = rom ~name:"addr_rom" ~width:4 addr_data in
  let bank = ram ~name:"bank" ~size:8 ~width:8 ~init:(Array.make 8 0) () in
  ram_write bank
    ~we:(ram_read we_rom cnt)
    ~addr:(ram_read addr_rom cnt)
    ~data:(const ~width:8 1);
  let out = ram_read bank (const ~width:3 0) in
  Circuit.create ~name:"bank_t" ~outputs:[ ("o", out); ("c", cnt) ]

let test_l201_oob_write () =
  (* write to address 9 of a size-8 bank at cycle 1 *)
  let we = Array.init 16 (fun c -> if c < 3 then 1 else 0) in
  let addr = Array.init 16 (fun c -> if c = 1 then 9 else c land 7) in
  let c = scheduled_bank ~we_data:we ~addr_data:addr in
  let r = Proof.analyze ~cycles:16 c in
  let errors = Lint.Finding.errors r.Proof.findings in
  Alcotest.(check bool) "L201 error" true (has_rule "L201" errors);
  Alcotest.(check bool) "gate trips" true (Proof.gate r.Proof.findings <> [])

let test_l201_l202_clean () =
  (* all writes in range, strobe quiet after cycle 2: both rules proven *)
  let we = Array.init 16 (fun c -> if c < 3 then 1 else 0) in
  let addr = Array.init 16 (fun c -> c land 7) in
  let c = scheduled_bank ~we_data:we ~addr_data:addr in
  let r = Proof.analyze ~cycles:16 c in
  Alcotest.(check (list Alcotest.string)) "gate clean" []
    (List.map
       (fun (f : Lint.Finding.t) -> f.Lint.Finding.rule)
       (Proof.gate r.Proof.findings));
  let mentions sub = List.exists (fun p -> contains p sub) r.Proof.proofs in
  Alcotest.(check bool) "L201 proof" true (mentions "L201 bank");
  Alcotest.(check bool) "L202 proof" true (mentions "L202 bank")

let test_l202_stuck_strobe () =
  (* write strobe never quiesces: active in the repeating state *)
  let we = Array.make 16 1 in
  let addr = Array.init 16 (fun c -> c land 7) in
  let c = scheduled_bank ~we_data:we ~addr_data:addr in
  let r = Proof.analyze ~cycles:16 c in
  let errors = Lint.Finding.errors r.Proof.findings in
  Alcotest.(check bool) "L202 error" true (has_rule "L202" errors)

let test_l203_constant_register () =
  let open Signal in
  let k = reg ~init:7 (const ~width:8 7) -- "konst" in
  let x = input "x" 8 in
  let c = Circuit.create ~name:"k" ~outputs:[ ("o", k +: x) ] in
  let r = Proof.analyze ~cycles:4 c in
  Alcotest.(check bool) "L203 emitted" true (has_rule "L203" r.Proof.findings)

let test_l204_dead_high_bits () =
  let open Signal in
  let x = input "x" 4 in
  let wide = reg (uresize x 16) -- "wide" in
  let c = Circuit.create ~name:"n" ~outputs:[ ("o", wide) ] in
  let r = Proof.analyze ~cycles:4 c in
  Alcotest.(check bool) "L204 emitted" true (has_rule "L204" r.Proof.findings)

(* ---------------- narrowing: differential equivalence --------------- *)

let test_narrow_differential () =
  let open Signal in
  let x = input "x" 4 and y = input "y" 4 in
  let wide = reg (uresize x 16 +: uresize y 16) -- "wide" in
  let acc_w = wire 16 in
  let acc = reg acc_w -- "acc16" in
  assign acc_w
    (mux2 (bit x 0) (const ~width:16 0) (acc +: uresize y 16));
  let c =
    Circuit.create ~name:"nar" ~outputs:[ ("o", wide); ("a", acc) ]
  in
  let narrowed, _, sv = Absint.Narrow.circuit c in
  Alcotest.(check bool) "reg bits narrowed" true
    (sv.Absint.Narrow.reg_bits_after < sv.Absint.Narrow.reg_bits_before);
  let narrowed_inputs = List.map fst (Circuit.inputs narrowed) in
  let rng = Random.State.make [| 7 |] in
  List.iter
    (fun backend ->
      let s0 = Sim.create ~backend c in
      let s1 = Sim.create ~backend narrowed in
      for _ = 1 to 30 do
        let vx = Random.State.int rng 16 and vy = Random.State.int rng 16 in
        Sim.set_input s0 "x" vx;
        Sim.set_input s0 "y" vy;
        if List.mem "x" narrowed_inputs then Sim.set_input s1 "x" vx;
        if List.mem "y" narrowed_inputs then Sim.set_input s1 "y" vy;
        Sim.settle s0;
        Sim.settle s1;
        List.iter
          (fun (name, _) ->
            Alcotest.(check int)
              ("output " ^ name)
              (Sim.output s0 name) (Sim.output s1 name))
          (Circuit.outputs c);
        Sim.latch s0;
        Sim.latch s1
      done)
    [ `Tape; `Closure ]

(* ---------------- tier-1 workloads proven safe ---------------------- *)

let tier1_cases =
  [ ("gemm", Workloads.gemm ~m:4 ~n:4 ~k:5, "MNK-SST");
    ("conv2d", Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3, "KCX-SST");
    ("depthwise", Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3,
     "XYP-MMM");
    ("mttkrp", Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4, "IKL-UBBB") ]

let test_tier1_proven_safe () =
  List.iter
    (fun (tag, stmt, dname) ->
      let design = Search.find_design_exn stmt dname in
      let env = Exec.alloc_inputs stmt in
      let acc = Accel.generate ~rows:4 ~cols:4 ~counters:true design env in
      (* static proof only: the accelerator is never simulated *)
      let r = Absint.Report.of_accel acc in
      Alcotest.(check bool) (tag ^ " safe") true r.Absint.Report.safe;
      Alcotest.(check (list Alcotest.string)) (tag ^ " gate") []
        (List.map
           (fun (f : Lint.Finding.t) -> f.Lint.Finding.rule)
           (Proof.gate r.Absint.Report.findings));
      let sv = r.Absint.Report.savings in
      Alcotest.(check bool) (tag ^ " narrows") true
        (sv.Absint.Narrow.reg_bits_after < sv.Absint.Narrow.reg_bits_before);
      Alcotest.(check bool) (tag ^ " json safe") true
        (contains (Absint.Report.to_json r) "\"safe\": true"))
    tier1_cases

(* ---------------- SARIF export -------------------------------------- *)

let test_sarif () =
  let fs =
    [ Lint.Finding.v ~rule:"L200" ~target:"t" ~subject:"acc" "may wrap";
      Lint.Finding.v ~rule:"L203" ~target:"t" ~subject:"k" "constant" ]
  in
  let s = Lint.Finding.to_sarif fs in
  Alcotest.(check bool) "version" true (contains s "\"version\": \"2.1.0\"");
  Alcotest.(check bool) "ruleId" true (contains s "\"ruleId\": \"L200\"");
  Alcotest.(check bool) "rule title" true (contains s "accumulator-may-wrap");
  Alcotest.(check bool) "info is note" true (contains s "\"level\": \"note\"");
  Alcotest.(check bool) "logical location" true
    (contains s "\"fullyQualifiedName\": \"t/acc\"")

(* ---------------- width-mismatch diagnostics ------------------------ *)

let test_blame_messages () =
  let open Signal in
  let a = input "alpha" 8 and b = input "beta" 4 in
  (try
     ignore (a +: b);
     Alcotest.fail "expected mismatch"
   with Width_mismatch msg ->
     Alcotest.(check bool) "names alpha" true (contains msg "'alpha'");
     Alcotest.(check bool) "names beta" true (contains msg "'beta'"));
  (* anonymous expression anchored to the nearest named signal *)
  let r = reg (const ~width:8 5) -- "acc" in
  let anon = r +: const ~width:8 1 in
  let w4 = wire 4 in
  (try
     assign w4 anon;
     Alcotest.fail "expected mismatch"
   with Width_mismatch msg ->
     Alcotest.(check bool) "near acc" true (contains msg "near 'acc'"));
  Alcotest.(check (option Alcotest.string)) "nearest_named" (Some "acc")
    (nearest_named anon)

let suite =
  [ Alcotest.test_case "av-transfer-soundness" `Quick test_av_soundness;
    Alcotest.test_case "engine-mod10-counter" `Quick test_engine_counter;
    Alcotest.test_case "stream-slice" `Quick test_stream_slice;
    Alcotest.test_case "L200-overflowing-acc" `Quick
      test_l200_overflowing_acc;
    Alcotest.test_case "L201-oob-write" `Quick test_l201_oob_write;
    Alcotest.test_case "L201-L202-clean" `Quick test_l201_l202_clean;
    Alcotest.test_case "L202-stuck-strobe" `Quick test_l202_stuck_strobe;
    Alcotest.test_case "L203-constant-register" `Quick
      test_l203_constant_register;
    Alcotest.test_case "L204-dead-high-bits" `Quick
      test_l204_dead_high_bits;
    Alcotest.test_case "narrow-differential" `Quick test_narrow_differential;
    Alcotest.test_case "tier1-proven-safe" `Quick test_tier1_proven_safe;
    Alcotest.test_case "sarif-export" `Quick test_sarif;
    Alcotest.test_case "blame-messages" `Quick test_blame_messages ]
