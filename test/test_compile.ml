(* Runtime-programmable accelerators: writable schedule memories
   (Accel.generate ~programmable) and the einsum-to-descriptor compiler
   (Tl_compile).  The contract under test: one generated netlist serves
   every compatible shape bit-identically to a freshly generated
   per-shape ROM build, every compiler rejection is a typed error, and a
   compile success is a load guarantee. *)

open Tensorlib

let envelope_of ?(headroom = 4) l =
  { Layout.env_cycles = headroom * l.Layout.l_total;
    env_passes = headroom * max 1 l.Layout.l_passes;
    env_elems =
      headroom
      * List.fold_left
          (fun a (i : Layout.input) -> max a i.Layout.in_elems)
          1 l.Layout.l_inputs;
    env_bank =
      headroom
      * List.fold_left (fun a (_, cap, _) -> max a (max 1 cap)) 1
          l.Layout.l_banks }

let programmable ?headroom ?harden ?counters ?(rows = 4) ?(cols = 4) stmt name
    =
  let design = Search.find_design_exn stmt name in
  let env = Exec.alloc_inputs stmt in
  let l = Layout.build design ~rows ~cols in
  let acc =
    Accel.generate ~rows ~cols ?harden ?counters
      ~programmable:(envelope_of ?headroom l) design env
  in
  (acc, env)

let compile_exn ~target design =
  match Compile.compile ~target design with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile failed: %s" (Compile.error_to_string e)

(* ---------------- generation parity ---------------- *)

(* the programmable variant must power on configured for its generating
   shape and compute exactly what the ROM variant computes *)
let test_programmable_matches_rom () =
  List.iter
    (fun (stmt, name) ->
      let design = Search.find_design_exn stmt name in
      let env = Exec.alloc_inputs stmt in
      let golden = Exec.run stmt env in
      let rom = Accel.generate ~rows:4 ~cols:4 design env in
      let prog, _ = programmable stmt name in
      Alcotest.(check bool)
        (name ^ " ROM output = golden")
        true
        (Dense.equal (Accel.execute rom) golden);
      Alcotest.(check bool)
        (name ^ " programmable output = golden")
        true
        (Dense.equal (Accel.execute prog) golden))
    [ (Workloads.gemm ~m:4 ~n:4 ~k:5, "MNK-SST");
      (Workloads.gemm ~m:4 ~n:4 ~k:4, "MNK-STS");
      (Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3, "KCX-SST") ]

(* the software layout pass must reproduce, image for image, the tables
   the hardware builders bake into ROMs — the sync that makes a compiled
   program trustworthy *)
let test_layout_matches_builder_images () =
  List.iter
    (fun (stmt, name) ->
      let design = Search.find_design_exn stmt name in
      let env = Exec.alloc_inputs stmt in
      let rom = Accel.generate ~rows:4 ~cols:4 design env in
      let prog, _ = programmable stmt name in
      let pi =
        match prog.Accel.prog with Some pi -> pi | None -> assert false
      in
      let l = Layout.build design ~rows:4 ~cols:4 in
      let rams = Circuit.rams rom.Accel.circuit in
      let checked = ref 0 in
      let has_prefix p s =
        String.length s >= String.length p && String.sub s 0 (String.length p) = p
      in
      List.iter
        (fun (m : Layout.mem) ->
          match
            List.find_opt
              (fun (r : Signal.ram) -> r.Signal.ram_name = m.Layout.m_name)
              rams
          with
          | None ->
            (* controller streams (ctrl_ prefix) and counter increments
               (ctr_ prefix) are comparator logic / absent on the ROM
               variant and only become memories on the programmable one —
               they must still be addressable there *)
            if
              not
                (has_prefix "ctrl_" m.Layout.m_name
                || has_prefix "ctr_" m.Layout.m_name)
            then
              Alcotest.failf "%s: layout mem %s missing from ROM netlist" name
                m.Layout.m_name;
            if
              has_prefix "ctrl_" m.Layout.m_name
              && not (List.mem_assoc m.Layout.m_name pi.Accel.pi_mems)
            then
              Alcotest.failf "%s: %s absent from programmable descriptors"
                name m.Layout.m_name
          | Some r ->
            incr checked;
            if r.Signal.init_data <> m.Layout.m_image then
              Alcotest.failf "%s: image mismatch for %s" name m.Layout.m_name)
        l.Layout.l_mems;
      Alcotest.(check bool)
        (name ^ " checked some images")
        true (!checked > 0);
      Alcotest.(check int)
        (name ^ " layout cycles = accel cycles")
        rom.Accel.total_cycles l.Layout.l_total)
    [ (Workloads.gemm ~m:4 ~n:4 ~k:5, "MNK-SST");
      (Workloads.gemm ~m:4 ~n:4 ~k:4, "MNK-MTM");
      (Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4, "IKL-UBBB") ]

(* ---------------- serving many shapes ---------------- *)

(* the tentpole scenario: ONE programmable 4x4 netlist serves three
   distinct GEMM shapes, each bit-identical to the golden executor AND
   to a freshly generated per-shape ROM accelerator, on both scalar
   backends *)
let test_one_netlist_three_shapes () =
  let target, _ = programmable (Workloads.gemm ~m:4 ~n:4 ~k:4) "MNK-SST" in
  let sim = Sim.create target.Accel.circuit in
  List.iter
    (fun k ->
      let stmt = Workloads.gemm ~m:4 ~n:4 ~k in
      let env = Exec.alloc_inputs stmt in
      let golden = Exec.run stmt env in
      let design, program =
        match Compile.find_design ~target stmt with
        | Ok dp -> dp
        | Error errs ->
          Alcotest.failf "k=%d: no candidate compiled (%d rejected)" k
            (List.length errs)
      in
      let rom_out =
        Accel.execute (Accel.generate ~rows:4 ~cols:4 design env)
      in
      let got_tape = Accel.execute_program ~sim target program env in
      let got_closure =
        Accel.execute_program ~backend:`Closure target program env
      in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d tape = golden" k)
        true
        (Dense.equal got_tape golden);
      Alcotest.(check bool)
        (Printf.sprintf "k=%d closure = golden" k)
        true
        (Dense.equal got_closure golden);
      Alcotest.(check bool)
        (Printf.sprintf "k=%d programmed = per-shape ROM" k)
        true
        (Dense.equal got_tape rom_out))
    [ 6; 10; 14 ]

(* reprogramming must also survive hardening: parity companions are
   kept coherent, so a hardened programmable netlist detects nothing on
   a clean run and still matches the golden model *)
let test_reprogram_hardened () =
  let target, _ =
    programmable ~harden:Harden.parity_only
      (Workloads.gemm ~m:4 ~n:4 ~k:4)
      "MNK-SST"
  in
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:9 in
  let golden_env = Exec.alloc_inputs stmt in
  let golden = Exec.run stmt golden_env in
  let design = Search.find_design_exn stmt "MNK-SST" in
  let p = compile_exn ~target design in
  Alcotest.(check bool)
    "hardened reprogrammed run = golden" true
    (Dense.equal (Accel.execute_program target p golden_env) golden)

(* load_env on a programmable target prefix-loads the envelope-sized
   data memories, so the plain execute/execute_with/execute_batch paths
   keep working *)
let test_programmable_execute_with () =
  let target, _ = programmable (Workloads.gemm ~m:4 ~n:4 ~k:4) "MNK-SST" in
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let env = Exec.alloc_inputs stmt in
  let golden = Exec.run stmt env in
  Alcotest.(check bool)
    "execute_with on programmable target" true
    (Dense.equal (Accel.execute_with target env) golden);
  match Accel.execute_batch target [ env; env ] with
  | [ a; b ] ->
    Alcotest.(check bool)
      "execute_batch lane 0" true (Dense.equal a golden);
    Alcotest.(check bool)
      "execute_batch lane 1" true (Dense.equal b golden)
  | _ -> Alcotest.fail "execute_batch arity"

(* ---------------- degenerate schedules ---------------- *)

(* size-1 memories: every address port is bits_for-sized, and bits_for
   must keep 1-entry memories addressable (a 0-width address port would
   be illegal); the 1x1x1 GEMM on a 1x1 array makes every table and data
   memory a single entry *)
let test_size_one_memories () =
  let stmt = Workloads.gemm ~m:1 ~n:1 ~k:1 in
  let design = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let golden = Exec.run stmt env in
  let rom = Accel.generate ~rows:1 ~cols:1 design env in
  Alcotest.(check bool)
    "1x1x1 ROM = golden" true
    (Dense.equal (Accel.execute rom) golden);
  let prog, _ = programmable ~rows:1 ~cols:1 stmt "MNK-SST" in
  Alcotest.(check bool)
    "1x1x1 programmable = golden" true
    (Dense.equal (Accel.execute prog) golden)

(* single-pass schedules: the pass-domain tables have exactly two
   entries (pass 0 plus the terminal sentinel) and the controller must
   still terminate cleanly; k=1 additionally shrinks the reduction to a
   single cycle per pass *)
let test_single_pass_and_k1 () =
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:1 in
  let design = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let golden = Exec.run stmt env in
  let rom = Accel.generate ~rows:4 ~cols:4 design env in
  Alcotest.(check int) "k=1 is a single pass" 1 rom.Accel.schedule.Schedule.passes;
  Alcotest.(check bool)
    "k=1 ROM = golden" true
    (Dense.equal (Accel.execute rom) golden);
  (* and a standing programmable netlist can be reprogrammed down to the
     k=1 degenerate and back up without rebuilding *)
  let target, _ = programmable (Workloads.gemm ~m:4 ~n:4 ~k:4) "MNK-SST" in
  let sim = Sim.create target.Accel.circuit in
  List.iter
    (fun k ->
      let stmt = Workloads.gemm ~m:4 ~n:4 ~k in
      let env = Exec.alloc_inputs stmt in
      let golden = Exec.run stmt env in
      let p = compile_exn ~target (Search.find_design_exn stmt "MNK-SST") in
      Alcotest.(check bool)
        (Printf.sprintf "reprogram k=%d" k)
        true
        (Dense.equal (Accel.execute_program ~sim target p env) golden))
    [ 1; 7; 1 ]

(* ---------------- compiler rejection paths ---------------- *)

let target_and_request () =
  let target, _ = programmable (Workloads.gemm ~m:4 ~n:4 ~k:8) "MNK-SST" in
  let request =
    Search.find_design_exn (Workloads.gemm ~m:4 ~n:4 ~k:12) "MNK-SST"
  in
  (target, request)

let test_reject_not_programmable () =
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:8 in
  let design = Search.find_design_exn stmt "MNK-SST" in
  let rom = Accel.generate ~rows:4 ~cols:4 design (Exec.alloc_inputs stmt) in
  match Compile.compile ~target:rom design with
  | Error Compile.Not_programmable -> ()
  | Error e ->
    Alcotest.failf "expected Not_programmable, got %s"
      (Compile.error_to_string e)
  | Ok _ -> Alcotest.fail "ROM target must not accept programs"

let test_reject_dataflow_mismatch () =
  let target, _ = target_and_request () in
  let request =
    Search.find_design_exn (Workloads.gemm ~m:4 ~n:4 ~k:12) "MNK-STS"
  in
  match Compile.compile ~target request with
  | Error (Compile.Dataflow_mismatch { position; target = t; requested = r })
    ->
    Alcotest.(check bool) "positions a tensor" true (position >= 0);
    Alcotest.(check bool) "classes differ" true (t <> r)
  | Error e ->
    Alcotest.failf "expected Dataflow_mismatch, got %s"
      (Compile.error_to_string e)
  | Ok _ -> Alcotest.fail "incompatible dataflow must be rejected"

let test_reject_capacity_exceeded () =
  let target, _ = target_and_request () in
  let request =
    Search.find_design_exn (Workloads.gemm ~m:4 ~n:4 ~k:500) "MNK-SST"
  in
  match Compile.compile ~target request with
  | Error (Compile.Capacity_exceeded { need; capacity; _ }) ->
    Alcotest.(check bool) "need exceeds capacity" true (need > capacity)
  | Error e ->
    Alcotest.failf "expected Capacity_exceeded, got %s"
      (Compile.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized shape must be rejected"

(* the width check is the load guarantee: against a target whose ports
   were (hypothetically) narrower than the envelope demands, compile
   must refuse rather than emit a program the loader would truncate *)
let test_reject_width_overflow () =
  let target, request = target_and_request () in
  let pi =
    match target.Accel.prog with Some pi -> pi | None -> assert false
  in
  let narrowed =
    { pi with
      Accel.pi_mems =
        List.map
          (fun (n, (r : Signal.ram)) -> (n, { r with Signal.ram_width = 1 }))
          pi.Accel.pi_mems }
  in
  match
    Compile.compile ~target:{ target with Accel.prog = Some narrowed } request
  with
  | Error (Compile.Width_overflow { value; width; _ }) ->
    Alcotest.(check int) "reports the narrowed width" 1 width;
    Alcotest.(check bool) "offending value out of range" true (value >= 2)
  | Error e ->
    Alcotest.failf "expected Width_overflow, got %s"
      (Compile.error_to_string e)
  | Ok _ -> Alcotest.fail "overflowing image must be rejected"

let test_find_design_reports_all_rejections () =
  let target, _ = target_and_request () in
  (* a 3-tensor einsum can never match a GEMM target: every candidate
     must come back with its own typed rejection *)
  let stmt = Workloads.mttkrp ~i:4 ~j:4 ~k:3 ~l:3 in
  match Compile.find_design ~target stmt with
  | Ok (d, _) -> Alcotest.failf "mttkrp compiled as %s?" d.Design.name
  | Error errs ->
    Alcotest.(check bool) "every candidate rejected" true (errs <> []);
    List.iter
      (fun (name, e) ->
        if String.trim (Compile.error_to_string e) = "" then
          Alcotest.failf "%s: empty rejection message" name)
      errs

(* ---------------- loader validation ---------------- *)

let test_load_rejects_bad_programs () =
  let target, request = target_and_request () in
  let p = compile_exn ~target request in
  let env = Exec.alloc_inputs (Workloads.gemm ~m:4 ~n:4 ~k:12) in
  let expect_bad name p' =
    match Accel.execute_program target p' env with
    | exception Accel.Bad_program _ -> ()
    | _ -> Alcotest.failf "%s: loader accepted a bad program" name
  in
  expect_bad "structure mismatch"
    { p with Layout.p_structure = p.Layout.p_structure ^ "x" };
  expect_bad "missing image" { p with Layout.p_images = [] };
  expect_bad "width overflow"
    { p with
      Layout.p_images =
        List.map
          (fun (n, (d, img)) -> (n, (d, Array.map (fun _ -> max_int) img)))
          p.Layout.p_images };
  (* a valid program still runs after all those rejections: validation
     must not have half-configured the standing simulator *)
  let golden = Exec.run (Workloads.gemm ~m:4 ~n:4 ~k:12) env in
  Alcotest.(check bool)
    "clean program still loads" true
    (Dense.equal (Accel.execute_program target p env) golden)

(* ---------------- program codec ---------------- *)

let test_codec_roundtrip () =
  let target, request = target_and_request () in
  let p = compile_exn ~target request in
  let s = Compile.program_to_json p in
  match Compile.program_of_json s with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok p' ->
    Alcotest.(check bool) "roundtrip is structural identity" true (p' = p);
    let env = Exec.alloc_inputs (Workloads.gemm ~m:4 ~n:4 ~k:12) in
    let golden = Exec.run (Workloads.gemm ~m:4 ~n:4 ~k:12) env in
    Alcotest.(check bool)
      "decoded program runs bit-identically" true
      (Dense.equal (Accel.execute_program target p' env) golden)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* replace the first occurrence of [pat] in [s] with [rep] *)
let replace_first s pat rep =
  let ls = String.length s and lp = String.length pat in
  let rec find i = if i + lp > ls then None
    else if String.sub s i lp = pat then Some i else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "test bug: pattern %S not in document" pat
  | Some i ->
    String.sub s 0 i ^ rep ^ String.sub s (i + lp) (ls - i - lp)

let test_codec_rejects_malformed () =
  let target, request = target_and_request () in
  let p = compile_exn ~target request in
  let s = Compile.program_to_json p in
  let expect_err name doc needle =
    match Compile.program_of_json doc with
    | Ok _ -> Alcotest.failf "%s: malformed document decoded" name
    | Error e ->
      Alcotest.(check bool) (name ^ " names the defect") true (contains e needle)
  in
  expect_err "not JSON" "nonsense" "";
  expect_err "wrong schema"
    (replace_first s Compile.schema "tensorlib-program/999")
    "schema";
  expect_err "digest mismatch"
    (replace_first s "\"structure\": \"" "\"structure\": \"x")
    "digest";
  expect_err "missing field" (replace_first s "\"total\"" "\"totally\"") "total";
  expect_err "negative value"
    (replace_first s "\"passes\": " "\"passes\": -")
    "passes"

(* ---------------- CLI validation sweep ---------------- *)

let cli =
  if Sys.file_exists "../bin/tensorlib_cli.exe" then "../bin/tensorlib_cli.exe"
  else "_build/default/bin/tensorlib_cli.exe"

let run_cli ?(stdin = "/dev/null") args =
  let out = Filename.temp_file "tlcli" ".out" in
  let err = Filename.temp_file "tlcli" ".err" in
  let rc =
    Sys.command
      (Printf.sprintf "%s %s < %s > %s 2> %s" (Filename.quote cli) args
         (Filename.quote stdin) (Filename.quote out) (Filename.quote err))
  in
  let read path =
    let ic = open_in path in
    let c = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    c
  in
  (rc, read out, read err)

(* every numeric resource flag shares one validator: non-positive values
   exit 2 with the same "must be >= 1; got N" stderr shape, whichever
   command carries the flag *)
let test_cli_positive_flag_validation () =
  List.iter
    (fun (args, flag, got) ->
      let rc, _, err = run_cli args in
      Alcotest.(check int) (args ^ " exits 2") 2 rc;
      let expected = Printf.sprintf "%s must be >= 1; got %d" flag got in
      Alcotest.(check bool)
        (Printf.sprintf "%s says %S" args expected)
        true (contains err expected))
    [ ("fault -w gemm-small -d MNK-SST --trials 0", "--trials", 0);
      ("fault -w gemm-small -d MNK-SST --trials=-7", "--trials", -7);
      ("sweep --network tiny --limit 0", "--limit", 0);
      ("sweep --network tiny --deadline-ms 0", "--deadline-ms", 0);
      ("sweep --network tiny --budget-checks=-1", "--budget-checks", -1);
      ("serve --limit 0", "--limit", 0);
      ("serve --max-request-bytes 0", "--max-request-bytes", 0);
      ("serve --deadline-ms=-3", "--deadline-ms", -3);
      ("compile -w gemm-small -d MNK-SST --rows 4 --cols 4 --headroom 0",
       "--headroom", 0) ]

(* --backend matching is case-insensitive for suggestions and never
   guesses from empty/whitespace input *)
let test_cli_backend_suggestions () =
  let rc, _, err = run_cli "simulate -w gemm-small -d MNK-SST --backend TAPE" in
  Alcotest.(check int) "unknown backend exits 2" 2 rc;
  Alcotest.(check bool)
    "TAPE suggests canonical tape" true
    (contains err "did you mean \"tape\"");
  let rc, _, err =
    run_cli "simulate -w gemm-small -d MNK-SST --backend Closur"
  in
  Alcotest.(check int) "typo exits 2" 2 rc;
  Alcotest.(check bool)
    "Closur suggests closure" true
    (contains err "did you mean \"closure\"");
  let rc, _, err = run_cli "simulate -w gemm-small -d MNK-SST --backend '   '" in
  Alcotest.(check int) "whitespace backend exits 2" 2 rc;
  Alcotest.(check bool)
    "whitespace gets no suggestion" false
    (contains err "did you mean")

(* the compile subcommand end-to-end: emit a program for a new shape and
   differential-check it (--run) against golden and per-shape ROM *)
let test_cli_compile_run () =
  let rc, out, err =
    run_cli
      "compile -w gemm-small -d MNK-SST --rows 4 --cols 4 -e 'C[m,n] += \
       A[m,k] * B[n,k]' --extents m=4,n=4,k=10 --run -o /dev/null"
  in
  Alcotest.(check int) "compile --run exits 0" 0 rc;
  Alcotest.(check bool)
    "golden differential reported" true
    (contains out "MATCHES golden model");
  Alcotest.(check bool)
    "ROM differential reported" true
    (contains out "MATCHES per-shape ROM build");
  Alcotest.(check bool)
    "summary names the envelope" true
    (contains err "envelope");
  (* an incompatible request fails with the typed rejections on stderr *)
  let rc, _, err =
    run_cli
      "compile -w gemm-small -d MNK-SST --rows 4 --cols 4 -e 'C[m,n] += \
       A[m,k] * B[n,k]' --extents m=4,n=4,k=900 -o /dev/null"
  in
  Alcotest.(check int) "oversized request exits 2" 2 rc;
  Alcotest.(check bool)
    "rejection names the envelope" true
    (contains err "envelope")

(* serve with a standing programmable accelerator answers einsum
   requests with a verified program *)
let test_cli_serve_einsum () =
  let requests = Filename.temp_file "tlreq" ".jsonl" in
  let oc = open_out requests in
  output_string oc
    "{\"id\": 1, \"einsum\": \"C[m,n] += A[m,k] * B[n,k]\", \"extents\": \
     \"m=4,n=4,k=9\"}\n";
  (* incompatible einsum: structured error, not a crash *)
  output_string oc
    "{\"id\": 2, \"einsum\": \"C[m,n] += A[m,k] * B[n,k]\", \"extents\": \
     \"m=4,n=4,k=900\"}\n";
  close_out oc;
  let rc, out, _ =
    run_cli ~stdin:requests
      "serve --limit 2 --accel-workload gemm-small --accel-dataflow MNK-SST \
       --accel-rows 4 --accel-cols 4"
  in
  Sys.remove requests;
  Alcotest.(check int) "serve exits 0" 0 rc;
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "two responses" 2 (List.length lines);
  match List.map Json.parse lines with
  | [ Ok j1; Ok j2 ] ->
    Alcotest.(check bool)
      "compatible shape served" true
      (Json.member "ok" j1 = Some (Json.Bool true));
    Alcotest.(check bool)
      "served program verified" true
      (Json.member "verified" j1 = Some (Json.Bool true));
    Alcotest.(check bool)
      "program document attached" true
      (match Json.member "program" j1 with
      | Some (Json.Obj _) -> true
      | _ -> false);
    Alcotest.(check bool)
      "incompatible shape rejected in-band" true
      (Json.member "ok" j2 = Some (Json.Bool false))
  | _ -> Alcotest.fail "responses must all be JSON"

let suite =
  [ Alcotest.test_case "programmable = ROM as generated" `Quick
      test_programmable_matches_rom;
    Alcotest.test_case "layout images = builder ROMs" `Quick
      test_layout_matches_builder_images;
    Alcotest.test_case "one netlist, three shapes" `Quick
      test_one_netlist_three_shapes;
    Alcotest.test_case "reprogram hardened variant" `Quick
      test_reprogram_hardened;
    Alcotest.test_case "execute paths on programmable target" `Quick
      test_programmable_execute_with;
    Alcotest.test_case "size-1 memories" `Quick test_size_one_memories;
    Alcotest.test_case "single-pass and k=1 schedules" `Quick
      test_single_pass_and_k1;
    Alcotest.test_case "reject: not programmable" `Quick
      test_reject_not_programmable;
    Alcotest.test_case "reject: dataflow mismatch" `Quick
      test_reject_dataflow_mismatch;
    Alcotest.test_case "reject: capacity exceeded" `Quick
      test_reject_capacity_exceeded;
    Alcotest.test_case "reject: width overflow" `Quick
      test_reject_width_overflow;
    Alcotest.test_case "find_design reports rejections" `Quick
      test_find_design_reports_all_rejections;
    Alcotest.test_case "loader validation" `Quick
      test_load_rejects_bad_programs;
    Alcotest.test_case "program codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "program codec rejects malformed" `Quick
      test_codec_rejects_malformed;
    Alcotest.test_case "cli positive-flag validation" `Quick
      test_cli_positive_flag_validation;
    Alcotest.test_case "cli backend suggestions" `Quick
      test_cli_backend_suggestions;
    Alcotest.test_case "cli compile --run differential" `Quick
      test_cli_compile_run;
    Alcotest.test_case "cli serve einsum requests" `Quick
      test_cli_serve_einsum ]
