(* Breadth coverage of the remaining public API surface: printers, small
   predicates, comparison helpers, and the baseline models. *)

open Tensorlib

let renders pp v = String.length (Format.asprintf "%a" pp v) > 0

let test_printers_render () =
  let gemm = Workloads.gemm ~m:8 ~n:8 ~k:8 in
  let d = Search.find_design_exn gemm "MNK-SST" in
  Alcotest.(check bool) "Iter.pp" true (renders Iter.pp (Iter.v "m" 8));
  Alcotest.(check bool) "Access.pp" true (renders Access.pp d.Design.transform.Transform.stmt.Stmt.output);
  Alcotest.(check bool) "Design.pp" true (renders Design.pp d);
  Alcotest.(check bool) "Design.pp_report" true (renders Design.pp_report d);
  Alcotest.(check bool) "Transform.pp" true
    (renders Transform.pp d.Design.transform);
  Alcotest.(check bool) "Dataflow.pp_vector" true
    (renders Dataflow.pp_vector { Dataflow.dp = [| 1; 0 |]; dt = 1 });
  Alcotest.(check bool) "Inventory.pp" true
    (renders Inventory.pp (Inventory.of_design d));
  Alcotest.(check bool) "Perf.pp_result" true
    (renders Perf.pp_result (Perf.evaluate (Search.find_design_exn gemm "MNK-MTM")));
  Alcotest.(check bool) "Asic.pp_report" true
    (renders Asic.pp_report (Asic.evaluate d));
  Alcotest.(check bool) "Vec.pp" true (renders Vec.pp (Vec.of_ints [ 1; 2 ]));
  Alcotest.(check bool) "Mat.pp" true
    (renders Mat.pp (Mat.identity 3))

let test_signal_comparison_helpers () =
  let open Signal in
  let a = input "ca" 8 and b = input "cb" 8 in
  let c =
    Circuit.create ~name:"cmp"
      ~outputs:
        [ ("ne", ne a b); ("ule", ule a b); ("sle", sle a b);
          ("vdd", vdd); ("gnd", gnd) ]
  in
  let s = Sim.create c in
  Sim.set_input s "ca" 200;
  Sim.set_input s "cb" 200;
  Sim.settle s;
  Alcotest.(check int) "ne equal" 0 (Sim.output s "ne");
  Alcotest.(check int) "ule equal" 1 (Sim.output s "ule");
  Alcotest.(check int) "sle equal" 1 (Sim.output s "sle");
  Alcotest.(check int) "vdd" 1 (Sim.output s "vdd");
  Alcotest.(check int) "gnd" 0 (Sim.output s "gnd");
  Sim.set_input s "cb" 100;
  Sim.settle s;
  Alcotest.(check int) "ne diff" 1 (Sim.output s "ne");
  Alcotest.(check int) "ule 200<=100 unsigned" 0 (Sim.output s "ule");
  (* signed: -56 <= 100 *)
  Alcotest.(check int) "sle signed" 1 (Sim.output s "sle")

let test_signal_misc () =
  let open Signal in
  Alcotest.(check bool) "is_wire" true (is_wire (wire 4));
  Alcotest.(check bool) "not wire" false (is_wire (const ~width:4 0));
  let w = wire 4 in
  assign w (const ~width:4 9);
  Alcotest.(check int) "resolve" 9
    (match (resolve w).Signal.node with
     | Const c -> c
     | _ -> -1);
  Alcotest.(check int) "repl width" 12 (width (repl (const ~width:4 5) 3));
  Alcotest.check_raises "repl 0"
    (Invalid_argument "Signal.repl: non-positive count") (fun () ->
      ignore (repl gnd 0))

let test_vec_neg_sub () =
  let v = Vec.of_ints [ 3; -1 ] in
  Alcotest.(check bool) "neg" true
    (Vec.equal (Vec.neg v) (Vec.of_ints [ -3; 1 ]));
  Alcotest.(check bool) "sub" true
    (Vec.equal (Vec.sub v v) (Vec.make 2 Rat.zero));
  Alcotest.(check int) "dim" 2 (Vec.dim v);
  Alcotest.check Alcotest.bool "get" true
    (Rat.equal (Vec.get v 0) (Rat.of_int 3))

let test_mat_accessors () =
  let a = Mat.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.(check bool) "row" true
    (Vec.equal (Mat.row a 1) (Vec.of_ints [ 3; 4 ]));
  Alcotest.(check bool) "col" true
    (Vec.equal (Mat.col a 0) (Vec.of_ints [ 1; 3 ]));
  Alcotest.(check (list (list int))) "to_int_rows" [ [ 1; 2 ]; [ 3; 4 ] ]
    (Mat.to_int_rows a);
  let doubled = Mat.map (fun r -> Rat.mul (Rat.of_int 2) r) a in
  Alcotest.(check bool) "map" true
    (Rat.equal (Mat.get doubled 1 1) (Rat.of_int 8));
  let s = Mat.add a (Mat.sub a a) in
  Alcotest.(check bool) "add/sub" true (Mat.equal s a);
  let sc = Mat.scale (Rat.of_int 3) a in
  Alcotest.(check bool) "scale" true
    (Rat.equal (Mat.get sc 0 1) (Rat.of_int 6))

let test_schedule_pe_active () =
  let stmt = Workloads.gemm ~m:2 ~n:2 ~k:2 in
  let d = Search.find_design_exn stmt "MNK-SST" in
  let sched = Schedule.build d ~rows:4 ~cols:4 in
  Alcotest.(check bool) "corner active" true (Schedule.pe_active sched (0, 0));
  Alcotest.(check bool) "outside footprint idle" false
    (Schedule.pe_active sched (3, 3))

let test_baseline_supports () =
  let gemm = Workloads.gemm ~m:8 ~n:8 ~k:8 in
  let sst = Search.find_design_exn gemm "MNK-SST" in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (b.Baselines.name ^ " supports systolic")
        true
        (b.Baselines.supports sst))
    Baselines.all

let test_fpga_int16 () =
  (* INT16 datapath: 1 DSP per MAC on VU9P *)
  let gemm = Workloads.gemm ~m:8 ~n:8 ~k:8 in
  let d = Search.find_design_exn gemm "MNK-SST" in
  let r =
    Fpga.evaluate ~device:Fpga.vu9p ~rows:16 ~cols:16 ~vec:4
      ~datatype:Fpga.Int16 ~efficiency:1.0 ~workload:"MM" d
  in
  Alcotest.(check int) "macs" 1024 r.Fpga.macs;
  Alcotest.(check bool) "dsp = macs/6840" true
    (abs_float (r.Fpga.dsp_pct -. (100. *. 1024. /. 6840.)) < 0.1)

let test_workloads_catalog () =
  let named = Workloads.all_named () in
  Alcotest.(check int) "seven evaluation workloads" 7 (List.length named);
  List.iter
    (fun (name, stmt) ->
      Alcotest.(check bool) (name ^ " nonempty") true
        (Stmt.domain_size stmt > 0))
    named

let suite =
  [ Alcotest.test_case "printers render" `Quick test_printers_render;
    Alcotest.test_case "signal comparisons" `Quick
      test_signal_comparison_helpers;
    Alcotest.test_case "signal misc" `Quick test_signal_misc;
    Alcotest.test_case "vec neg/sub" `Quick test_vec_neg_sub;
    Alcotest.test_case "mat accessors" `Quick test_mat_accessors;
    Alcotest.test_case "schedule pe_active" `Quick test_schedule_pe_active;
    Alcotest.test_case "baseline supports" `Quick test_baseline_supports;
    Alcotest.test_case "fpga int16" `Quick test_fpga_int16;
    Alcotest.test_case "workload catalog" `Quick test_workloads_catalog ]
