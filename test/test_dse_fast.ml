(* Fast-path DSE engine: streaming schedule statistics vs the materialised
   reference, branch-and-bound tile search vs exhaustive enumeration, the
   signature-keyed evaluation cache, and the sort-based Pareto filter. *)

open Tensorlib

let small_workloads =
  [ ("gemm", Workloads.gemm ~m:8 ~n:8 ~k:8);
    ("conv2d", Workloads.conv2d ~k:4 ~c:4 ~y:6 ~x:6 ~p:3 ~q:3);
    ("mttkrp", Workloads.mttkrp ~i:5 ~j:4 ~k:4 ~l:4);
    ("depthwise", Workloads.depthwise_conv ~k:6 ~y:5 ~x:5 ~p:3 ~q:3) ]

let check_stats_equal label (a : Perf.tile_stats) (b : Perf.tile_stats) =
  Alcotest.(check int) (label ^ " span") a.Perf.t_span b.Perf.t_span;
  Alcotest.(check int) (label ^ " active_pes") a.Perf.active_pes
    b.Perf.active_pes;
  Alcotest.(check int)
    (label ^ " active_pe_cycles")
    a.Perf.active_pe_cycles b.Perf.active_pe_cycles;
  Alcotest.(check int) (label ^ " busiest") a.Perf.busiest_pe b.Perf.busiest_pe;
  (* demand and traffic must be bit-identical, not approximately equal *)
  Alcotest.(check bool) (label ^ " demand") true (a.Perf.demand = b.Perf.demand);
  Alcotest.(check bool)
    (label ^ " per_tensor")
    true
    (a.Perf.per_tensor = b.Perf.per_tensor)

(* streaming statistics equal the materialised reference on every design of
   four workloads (multi-pass schedules included: unselected loops > 1) *)
let test_streaming_stats_workloads () =
  let checked = ref 0 in
  List.iter
    (fun (wname, stmt) ->
      List.iter
        (fun (dname, d) ->
          match Schedule.build d ~rows:16 ~cols:16 with
          | exception Schedule.Unsupported _ -> ()
          | sched ->
            let reference = Perf.tile_statistics d sched in
            let streaming =
              Perf.tile_statistics_streaming d
                (Schedule.frame d ~rows:16 ~cols:16)
            in
            incr checked;
            check_stats_equal (wname ^ "/" ^ dname) reference streaming)
        (List.filteri (fun i _ -> i < 10) (Search.all_designs stmt)))
    small_workloads;
  Alcotest.(check bool) "checked some designs" true (!checked > 20)

let arbitrary_matrix =
  let gen =
    QCheck.Gen.(
      let cell = int_range (-1) 1 in
      let rec full_rank () =
        array_size (return 9) cell >>= fun cells ->
        let m =
          List.init 3 (fun i -> List.init 3 (fun j -> cells.((i * 3) + j)))
        in
        if Rat.is_zero (Mat.det (Mat.of_int_rows m)) then full_rank ()
        else return m
      in
      full_rank ())
  in
  QCheck.make
    ~print:(fun m ->
      String.concat ";"
        (List.map (fun r -> String.concat "," (List.map string_of_int r)) m))
    gen

let prop_streaming_stats_random =
  QCheck.Test.make ~name:"streaming stats = materialised stats (random STT)"
    ~count:50 arbitrary_matrix (fun m ->
      let stmt = Workloads.gemm ~m:7 ~n:6 ~k:5 in
      let t = Transform.by_names stmt [ "m"; "n"; "k" ] ~matrix:m in
      let d = Design.analyze t in
      match Schedule.build d ~rows:24 ~cols:24 with
      | exception Schedule.Unsupported _ -> true
      | sched ->
        Perf.tile_statistics d sched
        = Perf.tile_statistics_streaming d (Schedule.frame d ~rows:24 ~cols:24))

(* index components beyond the old 10-bit packing range: a long loop on
   the time axis drives tensor indices past 1023, where the narrow code
   used to collide silently; both paths must now agree exactly *)
let test_stats_wide_indices () =
  let stmt = Workloads.gemm ~m:1100 ~n:4 ~k:4 in
  let t =
    Transform.by_names stmt [ "m"; "n"; "k" ]
      ~matrix:[ [ 0; 1; 0 ]; [ 0; 0; 1 ]; [ 1; 0; 0 ] ]
  in
  let d = Design.analyze t in
  let sched = Schedule.build d ~rows:16 ~cols:16 in
  check_stats_equal "wide" (Perf.tile_statistics d sched)
    (Perf.tile_statistics_streaming d (Schedule.frame d ~rows:16 ~cols:16))

(* pruned tile search + streaming stats must reproduce the exhaustive +
   materialised reference bit-for-bit, over whole evaluation records *)
let test_pruned_equals_exhaustive () =
  let checked = ref 0 in
  List.iter
    (fun stmt ->
      List.iter
        (fun (dname, d) ->
          match
            Perf.evaluate ~tile_search:`Exhaustive ~stats:`Materialised
              ~cache:false d
          with
          | exception Invalid_argument _ -> ()
          | reference ->
            let fast =
              Perf.evaluate ~tile_search:`Pruned ~stats:`Streaming ~cache:false
                d
            in
            incr checked;
            Alcotest.(check bool) (dname ^ " identical result") true
              (reference = fast))
        (List.filteri (fun i _ -> i < 8) (Search.all_designs stmt)))
    [ Workloads.gemm ~m:256 ~n:256 ~k:256;
      Workloads.conv2d ~k:64 ~c:64 ~y:56 ~x:56 ~p:3 ~q:3 ];
  Alcotest.(check bool) "checked some designs" true (!checked > 6)

(* a cache hit returns the same record as the cold computation *)
let test_cache_hit_equals_cold () =
  Par.Cache.clear_all ();
  let stmt = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  let designs =
    List.filteri (fun i _ -> i < 6) (Search.all_designs stmt)
    |> List.map snd
  in
  let cold = List.map (fun d -> Perf.evaluate d) designs in
  let before =
    List.find (fun s -> s.Par.Cache.name = "perf.evaluate")
      (Par.Cache.all_stats ())
  in
  let warm = List.map (fun d -> Perf.evaluate d) designs in
  let after =
    List.find (fun s -> s.Par.Cache.name = "perf.evaluate")
      (Par.Cache.all_stats ())
  in
  Alcotest.(check bool) "hit = cold" true (cold = warm);
  Alcotest.(check bool) "cache was hit" true
    (after.Par.Cache.hits >= before.Par.Cache.hits + List.length designs)

(* the cache is shared and mutex-guarded: a multi-domain sweep over the
   same designs returns exactly the sequential results *)
let test_cache_multi_domain () =
  Par.Cache.clear_all ();
  let stmt = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  let designs =
    List.filteri (fun i _ -> i < 8) (Search.all_designs stmt)
    |> List.map snd
  in
  let seq = List.map (fun d -> Perf.evaluate d) designs in
  let par = Par.map ~domains:2 (fun d -> Perf.evaluate d) designs in
  Alcotest.(check bool) "par = seq" true (seq = par)

(* design analysis through the prepared-reuse fast path must match the
   from-scratch analysis on random transforms *)
let prop_analyzer_equals_analyze =
  QCheck.Test.make ~name:"Design.analyzer = Design.analyze" ~count:60
    arbitrary_matrix (fun m ->
      let stmt = Workloads.gemm ~m:8 ~n:8 ~k:8 in
      let t = Transform.by_names stmt [ "m"; "n"; "k" ] ~matrix:m in
      let analyzer =
        Design.analyzer stmt ~selected:t.Transform.selected
      in
      Design.analyze t = analyzer t)

(* Pareto: the sweep must agree with the quadratic reference, preserving
   input order and keeping duplicate projections *)
let pareto_reference project items =
  let dominated (x1, y1) (x2, y2) =
    x2 <= x1 && y2 <= y1 && (x2 < x1 || y2 < y1)
  in
  List.filter
    (fun a ->
      let pa = project a in
      not (List.exists (fun b -> b != a && dominated pa (project b)) items))
    items

let prop_pareto_matches_reference =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 60)
        (pair (int_range 0 8) (int_range 0 8)))
  in
  let arb =
    QCheck.make
      ~print:(fun l ->
        String.concat ";"
          (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) l))
      gen
  in
  QCheck.Test.make ~name:"pareto_min = quadratic reference" ~count:200 arb
    (fun pts ->
      let project (a, b) = (float_of_int a, float_of_int b) in
      Enumerate.pareto_min project pts = pareto_reference project pts)

let test_evaluate_name_deterministic () =
  let stmt = Workloads.gemm ~m:256 ~n:256 ~k:256 in
  let a = Perf.evaluate_name stmt "MNK-SST" in
  let b = Perf.evaluate_name stmt "MNK-SST" in
  Alcotest.(check bool) "some result" true (a <> None);
  Alcotest.(check bool) "repeat = first" true (a = b)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [ Alcotest.test_case "streaming stats on 4 workloads" `Quick
      test_streaming_stats_workloads;
    Alcotest.test_case "streaming stats, wide indices" `Quick
      test_stats_wide_indices;
    Alcotest.test_case "pruned = exhaustive evaluate" `Slow
      test_pruned_equals_exhaustive;
    Alcotest.test_case "cache hit = cold" `Quick test_cache_hit_equals_cold;
    Alcotest.test_case "cache under Tl_par domains" `Quick
      test_cache_multi_domain;
    Alcotest.test_case "evaluate_name deterministic" `Quick
      test_evaluate_name_deterministic ]
  @ qsuite
      [ prop_streaming_stats_random; prop_analyzer_equals_analyze;
        prop_pareto_matches_reference ]
