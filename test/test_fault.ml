(* Fault-injection subsystem: zero-fault transparency of the hardened
   variants, campaign determinism and total classification, the tape /
   closure differential oracle under injection, ABFT checksum coverage,
   TMR masking, and the cycle watchdog. *)

open Tensorlib

let check msg b = Alcotest.(check bool) msg true b

let gen ?(harden = Harden.none) ?(rows = 8) ?(cols = 8) stmt dname =
  let design = Search.find_design_exn stmt dname in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows ~cols ~harden design env in
  (acc, Exec.run stmt env)

let small_gemm () = Workloads.gemm ~m:4 ~n:4 ~k:4

(* ---------------- hardening is transparent when fault-free ------------ *)

let test_zero_fault_golden () =
  let cases =
    [ (Workloads.gemm ~m:4 ~n:4 ~k:5, "MNK-SST");
      (Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3, "KCX-SST");
      (Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3, "XYP-MMM");
      (Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4, "IKL-UBBB") ]
  in
  List.iter
    (fun (stmt, dname) ->
      List.iter
        (fun harden ->
          let acc, golden = gen ~harden stmt dname in
          List.iter
            (fun backend ->
              check
                (Printf.sprintf "%s/%s zero-fault matches golden" dname
                   (Harden.label harden))
                (Dense.equal golden (Accel.execute ~backend acc)))
            [ `Tape; `Closure ])
        [ Harden.none; Harden.full ])
    cases

let test_hardened_interface () =
  let acc, _ = gen ~harden:Harden.full ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST" in
  check "tmr register list non-empty"
    (acc.Accel.hardening.Harden.tmr_regs <> []);
  check "parity pairs non-empty"
    (acc.Accel.hardening.Harden.parity_pairs <> []);
  let sim = Sim.create acc.Accel.circuit in
  Sim.cycles sim (Accel.planned_cycles acc);
  check "error_detected quiet on a clean run"
    (Sim.output sim "error_detected" = 0)

(* ---------------- campaigns: determinism + total classification ------- *)

let trial_sig (t : Campaign.trial) =
  ( Fault.fault_label t.Campaign.fault,
    Campaign.outcome_label t.Campaign.outcome,
    t.Campaign.detected_by )

let test_campaign_deterministic () =
  let acc, golden = gen ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST" in
  let config =
    { Campaign.default_config with trials = 300; domains = Some 1 }
  in
  let r1 = Campaign.run ~config ~golden acc in
  (* a different pool width must not change results or their order *)
  let r2 = Campaign.run ~config:{ config with domains = Some 3 } ~golden acc in
  check "plan + outcomes independent of pool width"
    (List.map trial_sig r1.Campaign.results
    = List.map trial_sig r2.Campaign.results);
  check "every trial classified"
    (r1.Campaign.masked + r1.Campaign.sdc + r1.Campaign.detected
     + r1.Campaign.hang
    = r1.Campaign.trials);
  check "per-class totals partition the trials"
    (List.fold_left
       (fun a (c : Campaign.class_stats) -> a + c.Campaign.total)
       0 r1.Campaign.per_class
    = r1.Campaign.trials);
  check "trial count as configured" (r1.Campaign.trials = 300)

let test_backend_differential () =
  let acc, golden = gen ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST" in
  let base = { Campaign.default_config with trials = 150 } in
  let rt = Campaign.run ~config:{ base with backend = `Tape } ~golden acc in
  let rc =
    Campaign.run ~config:{ base with backend = `Closure } ~golden acc
  in
  check "tape and closure classify every fault identically"
    (List.map trial_sig rt.Campaign.results
    = List.map trial_sig rc.Campaign.results)

(* The bit-sliced backend runs the same plan 62 trials per pass; every
   trial must classify exactly as the scalar tape did.  This exercises
   parity hardening + ABFT so Detected outcomes (and their attribution)
   cross the batch path too. *)
let test_batch_campaign_differential () =
  let stmt = small_gemm () in
  let env = Exec.alloc_inputs stmt in
  let stmt', env' = Option.get (Abft.augment stmt env) in
  let design = Search.find_design_exn stmt' "MNK-SST" in
  let acc =
    Accel.generate ~rows:5 ~cols:5 ~harden:Harden.parity_only design env'
  in
  let base =
    { Campaign.default_config with trials = 200; abft = true }
  in
  let rt = Campaign.run ~config:{ base with backend = `Tape } acc in
  let rb = Campaign.run ~config:{ base with backend = `Batch } acc in
  Alcotest.(check string) "report labelled batch" "batch" rb.Campaign.backend;
  check "batch classifies every fault exactly as the scalar tape"
    (List.map trial_sig rt.Campaign.results
    = List.map trial_sig rb.Campaign.results);
  check "batch saw hangs or detections too"
    (rb.Campaign.detected + rb.Campaign.hang > 0)

(* Reusing one simulator across campaigns must not leak the previous
   group's per-lane force masks: two identical batch campaigns (which
   internally reuse each domain's simulator across ⌈trials/62⌉ groups,
   including Stuck_reg forces) must agree with a fresh scalar run. *)
let test_batch_campaign_reuse () =
  let acc, golden = gen ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST" in
  let config =
    { Campaign.default_config with
      trials = 150;
      backend = `Batch;
      kinds = [ Fault.Stuck_at ];
      domains = Some 1 }
  in
  let r1 = Campaign.run ~config ~golden acc in
  let r2 = Campaign.run ~config ~golden acc in
  check "two batch campaigns agree (no cross-group force leakage)"
    (List.map trial_sig r1.Campaign.results
    = List.map trial_sig r2.Campaign.results);
  let rt = Campaign.run ~config:{ config with backend = `Tape } ~golden acc in
  check "stuck-at outcomes match the scalar tape"
    (List.map trial_sig rt.Campaign.results
    = List.map trial_sig r1.Campaign.results)

(* ---------------- ABFT ----------------------------------------------- *)

let test_abft_detects_single_bit () =
  let rng = Random.State.make [| 2026 |] in
  for _ = 1 to 3 do
    let d () = 2 + Random.State.int rng 3 in
    let m = d () and n = d () and k = d () in
    let stmt = Workloads.gemm ~m ~n ~k in
    let env = Exec.alloc_inputs stmt in
    match Abft.augment stmt env with
    | None -> Alcotest.fail "gemm must be ABFT-supported"
    | Some (stmt', env') ->
      let out = Exec.run stmt' env' in
      check "augmented golden passes the checksum test"
        (Abft.check ~acc_width:32 out);
      check "strip recovers the original result"
        (Dense.equal (Abft.strip out) (Exec.run stmt env));
      (* every single-bit corruption of every output element must break
         at least one row or column checksum *)
      for idx = 0 to Dense.size out - 1 do
        for bit = 0 to 31 do
          let bad = Dense.copy out in
          Dense.flat_set bad idx (Dense.flat_get bad idx lxor (1 lsl bit));
          if Abft.check ~acc_width:32 bad then
            Alcotest.failf "undetected corruption at element %d bit %d" idx
              bit
        done
      done
  done

let test_abft_rejects_non_gemm () =
  let stmt = Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3 in
  check "depthwise is not ABFT-supported" (not (Abft.supported stmt));
  check "augment returns None"
    (Abft.augment stmt (Exec.alloc_inputs stmt) = None)

(* ---------------- TMR ------------------------------------------------- *)

let test_tmr_masks_controller_flips () =
  let acc, golden =
    gen ~harden:Harden.tmr_only ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST"
  in
  let table = Fault.table ~classes:[ Fault.Controller ] acc.Accel.circuit in
  check "controller sites exist" (table.Fault.sites <> []);
  let faults =
    List.concat_map
      (fun (s : Fault.site) ->
        match s.Fault.target with
        | Fault.Mem _ -> []
        | Fault.Reg r ->
          List.concat_map
            (fun cycle ->
              List.init (Signal.width r) (fun bit ->
                  Fault.Flip_reg { reg = r; cls = s.Fault.cls; bit; cycle }))
            [ 0; 3; 17 ])
      table.Fault.sites
  in
  let r = Campaign.run_faults ~golden acc faults in
  check "every single controller-bit flip is masked by the TMR vote"
    (r.Campaign.masked = r.Campaign.trials)

(* ---------------- watchdog / timeout ---------------------------------- *)

let test_watchdog_classifies_hang () =
  let acc, golden = gen ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST" in
  let table = Fault.table ~classes:[ Fault.Controller ] acc.Accel.circuit in
  let reg, cls =
    List.find_map
      (fun (s : Fault.site) ->
        match s.Fault.target with
        | Fault.Reg r when Fault.site_name s = "cycle_ctr" ->
          Some (r, s.Fault.cls)
        | _ -> None)
      table.Fault.sites
    |> Option.get
  in
  (* stuck-at-0 on a set bit of the terminal count: the counter can never
     reach it, [done] stays low, and the watchdog must classify a Hang *)
  let terminal = acc.Accel.total_cycles - 1 in
  let bit =
    let rec lowest b = if terminal land (1 lsl b) <> 0 then b else lowest (b + 1) in
    lowest 0
  in
  let fault = Fault.Stuck_reg { reg; cls; bit; value = 0 } in
  let r = Campaign.run_faults ~golden acc [ fault ] in
  (match r.Campaign.results with
  | [ t ] ->
    check "stuck cycle counter classified as hang"
      (t.Campaign.outcome = Campaign.Hang);
    check "hang attributed to the watchdog"
      (t.Campaign.detected_by = Some "watchdog")
  | _ -> Alcotest.fail "expected exactly one trial");
  check "hang counted in the report" (r.Campaign.hang = 1)

let test_max_cycles_timeout () =
  let acc, _ = gen ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST" in
  (match Accel.execute ~max_cycles:5 acc with
  | _ -> Alcotest.fail "truncated run must raise Simulation_timeout"
  | exception Accel.Simulation_timeout { cycles; _ } ->
    check "timeout reports the cycles actually run" (cycles = 5));
  (* a max_cycles at least as large as the schedule is harmless *)
  let golden = Accel.execute acc in
  check "generous max_cycles still completes"
    (Dense.equal golden
       (Accel.execute ~max_cycles:(10 * Accel.planned_cycles acc) acc));
  (match Accel.execute ~max_cycles:0 acc with
  | _ -> Alcotest.fail "max_cycles 0 must be rejected"
  | exception Invalid_argument _ -> ())

(* ---------------- parity hardening ------------------------------------ *)

let test_parity_covers_memory_faults () =
  let acc, golden =
    gen ~harden:Harden.parity_only ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST"
  in
  let config =
    { Campaign.default_config with
      trials = 400;
      classes = Some [ Fault.Memory ] }
  in
  let r = Campaign.run ~config ~golden acc in
  check "no silent corruption from memory faults under parity"
    (r.Campaign.sdc = 0);
  check "parity actually fired at least once" (r.Campaign.detected > 0)

let test_hardened_campaign_sdc_free () =
  (* full hardening + ABFT: the acceptance-criteria configuration *)
  let stmt = small_gemm () in
  let env = Exec.alloc_inputs stmt in
  let stmt', env' = Option.get (Abft.augment stmt env) in
  let design = Search.find_design_exn stmt' "MNK-SST" in
  let acc = Accel.generate ~rows:5 ~cols:5 ~harden:Harden.full design env' in
  let config =
    { Campaign.default_config with trials = 250; abft = true }
  in
  let r = Campaign.run ~config acc in
  check "hardened accelerator has zero SDC" (r.Campaign.sdc = 0);
  check "every trial classified"
    (r.Campaign.masked + r.Campaign.detected + r.Campaign.hang
    = r.Campaign.trials)

(* ---------------- sim hooks ------------------------------------------- *)

let test_force_rejects_non_reg () =
  let acc, _ = gen ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST" in
  let sim = Sim.create acc.Accel.circuit in
  let w = Signal.input "bogus" 4 in
  (match Sim.force sim w ~and_mask:(-1) ~or_mask:1 with
  | _ -> Alcotest.fail "force on a non-register must be rejected"
  | exception Invalid_argument _ -> ())

let test_fault_plan_deterministic () =
  let acc, _ = gen ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST" in
  let table = Fault.table acc.Accel.circuit in
  let plan () = Fault.plan ~seed:7 ~trials:100 ~cycles:50 table in
  check "same seed, same plan"
    (List.map Fault.fault_label (plan ())
    = List.map Fault.fault_label (plan ()));
  let other = Fault.plan ~seed:8 ~trials:100 ~cycles:50 table in
  check "different seed, different plan"
    (List.map Fault.fault_label (plan ())
    <> List.map Fault.fault_label other)

(* ---------------- lint rules ------------------------------------------ *)

let test_lint_fault_surface () =
  let acc, _ = gen ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST" in
  let full = Fault.table acc.Accel.circuit in
  let none =
    Lint.Netlist.check_fault_surface
      ~injectable:(Fault.injectable_reg full) acc.Accel.circuit
  in
  check "full table leaves no L014 findings" (none = []);
  let restricted = Fault.table ~classes:[ Fault.Memory ] acc.Accel.circuit in
  let gaps =
    Lint.Netlist.check_fault_surface
      ~injectable:(Fault.injectable_reg restricted) acc.Accel.circuit
  in
  check "restricted table flags uncovered registers" (gaps <> [])

let test_lint_hardening () =
  let bare, _ = gen ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST" in
  let unprotected =
    Lint.Netlist.check_hardening ~protected:(fun _ -> false)
      bare.Accel.circuit
  in
  check "bare banks flagged by L015" (unprotected <> []);
  let hard, _ =
    gen ~harden:Harden.parity_only ~rows:4 ~cols:4 (small_gemm ()) "MNK-SST"
  in
  let pairs = hard.Accel.hardening.Harden.parity_pairs in
  let protected (r : Signal.ram) =
    List.exists
      (fun ((d : Signal.ram), (p : Signal.ram)) ->
        d.Signal.ram_id = r.Signal.ram_id || p.Signal.ram_id = r.Signal.ram_id)
      pairs
  in
  let covered =
    Lint.Netlist.check_hardening ~protected hard.Accel.circuit
  in
  check "parity-hardened design is L015-clean" (covered = [])

let suite =
  [ Alcotest.test_case "zero-fault golden (backends x hardening)" `Quick
      test_zero_fault_golden;
    Alcotest.test_case "hardened interface" `Quick test_hardened_interface;
    Alcotest.test_case "campaign determinism + classification" `Quick
      test_campaign_deterministic;
    Alcotest.test_case "tape/closure differential under faults" `Quick
      test_backend_differential;
    Alcotest.test_case "batch campaign = scalar campaign" `Quick
      test_batch_campaign_differential;
    Alcotest.test_case "batch campaign reuse leaks no forces" `Quick
      test_batch_campaign_reuse;
    Alcotest.test_case "abft detects single-bit corruption" `Quick
      test_abft_detects_single_bit;
    Alcotest.test_case "abft rejects non-gemm" `Quick
      test_abft_rejects_non_gemm;
    Alcotest.test_case "tmr masks controller flips" `Quick
      test_tmr_masks_controller_flips;
    Alcotest.test_case "watchdog classifies hang" `Quick
      test_watchdog_classifies_hang;
    Alcotest.test_case "execute max_cycles timeout" `Quick
      test_max_cycles_timeout;
    Alcotest.test_case "parity covers memory faults" `Quick
      test_parity_covers_memory_faults;
    Alcotest.test_case "hardened+abft campaign is sdc-free" `Quick
      test_hardened_campaign_sdc_free;
    Alcotest.test_case "force rejects non-register" `Quick
      test_force_rejects_non_reg;
    Alcotest.test_case "fault plans deterministic" `Quick
      test_fault_plan_deterministic;
    Alcotest.test_case "lint L014 fault surface" `Quick
      test_lint_fault_surface;
    Alcotest.test_case "lint L015 hardening" `Quick test_lint_hardening ]
