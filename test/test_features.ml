(* Tiling, topology reports, data re-loading, VCD capture, and the
   random-einsum end-to-end property. *)

open Tensorlib

(* ---------------- tiling ---------------- *)

let test_tiling_preserves_semantics () =
  let stmt = Workloads.gemm ~m:8 ~n:8 ~k:8 in
  let tiled = Tiling.split stmt [ ("m", 4); ("n", 4) ] in
  Alcotest.(check int) "depth grows by splits" 5 (Stmt.depth tiled);
  Alcotest.(check int) "domain size unchanged" (Stmt.domain_size stmt)
    (Stmt.domain_size tiled);
  (* same tensor shapes *)
  List.iter2
    (fun (a : Access.t) (b : Access.t) ->
      Alcotest.(check (array int)) a.Access.tensor
        (Access.shape a stmt.Stmt.iters)
        (Access.shape b tiled.Stmt.iters))
    (Stmt.tensors stmt) (Stmt.tensors tiled);
  (* same computed function *)
  let env = Exec.alloc_inputs stmt in
  Alcotest.(check bool) "same result" true
    (Dense.equal (Exec.run stmt env) (Exec.run tiled env))

let test_tiling_validation () =
  let stmt = Workloads.gemm ~m:8 ~n:8 ~k:8 in
  Alcotest.check_raises "non-dividing tile"
    (Invalid_argument "Tiling.split: tile 3 does not divide extent 8 of m")
    (fun () -> ignore (Tiling.split stmt [ ("m", 3) ]));
  Alcotest.check_raises "unknown iterator"
    (Invalid_argument "Tiling.split: unknown iterator z") (fun () ->
      ignore (Tiling.split stmt [ ("z", 2) ]))

let test_tiled_accelerator () =
  (* 8x8x8 GEMM on a 4x4 array: tile m,n to 4 and run the tiles as passes *)
  let stmt = Workloads.gemm ~m:8 ~n:8 ~k:8 in
  let tiled = Tiling.split stmt [ ("m", 4); ("n", 4) ] in
  let design = Search.find_design_exn tiled "MNK-SST" in
  let env = Exec.alloc_inputs tiled in
  let acc = Accel.generate ~rows:4 ~cols:4 design env in
  Alcotest.(check int) "4 spatial tiles = 4 passes" 4
    acc.Accel.schedule.Schedule.passes;
  Alcotest.(check bool) "tiled hardware matches golden" true
    (Dense.equal (Exec.run tiled env) (Accel.execute acc))

let test_tiled_weight_stationary () =
  (* stationary tensor changing across tiles exercises the double buffer *)
  let stmt = Workloads.gemm ~m:8 ~n:4 ~k:8 in
  let tiled = Tiling.split stmt [ ("m", 4); ("k", 4) ] in
  let design = Search.find_design_exn tiled "MNK-STS" in
  let env = Exec.alloc_inputs tiled in
  let acc = Accel.generate ~rows:8 ~cols:8 design env in
  Alcotest.(check bool) "multi-stage stationary hardware" true
    (Dense.equal (Exec.run tiled env) (Accel.execute acc))

let test_tile_to_fit () =
  let stmt = Workloads.gemm ~m:12 ~n:7 ~k:64 in
  let tiles = Tiling.tile_to_fit stmt ~names:[ "m"; "n"; "k" ] ~budget:8 in
  Alcotest.(check (list (pair string int))) "divisor tiles"
    [ ("m", 6); ("k", 8) ]
    tiles

(* ---------------- topology reports ---------------- *)

let test_topology_output_stationary () =
  let gemm = Workloads.gemm ~m:16 ~n:16 ~k:16 in
  let d = Search.find_design_exn gemm "MNK-SST" in
  let topo = Topology.describe ~rows:16 ~cols:16 d in
  let a = List.find (fun t -> t.Topology.tensor = "A") topo.Topology.tensors in
  (match a.Topology.links with
   | [ Topology.Chain { dp; dt } ] ->
     Alcotest.(check (array int)) "A chain horizontal" [| 0; 1 |] dp;
     Alcotest.(check int) "1 reg per hop" 1 dt
   | _ -> Alcotest.fail "A should be a single systolic chain");
  Alcotest.(check int) "16 chains" 16 a.Topology.lines;
  let c = List.find (fun t -> t.Topology.tensor = "C") topo.Topology.tensors in
  Alcotest.(check bool) "C drains" true
    (List.exists
       (function Topology.Drain _ -> true | _ -> false)
       c.Topology.links)

let test_topology_reduction_tree () =
  let gemm = Workloads.gemm ~m:16 ~n:16 ~k:16 in
  let d = Search.find_design_exn gemm "MNK-MTM" in
  let topo = Topology.describe ~rows:16 ~cols:16 d in
  let c = List.find (fun t -> t.Topology.tensor = "C") topo.Topology.tensors in
  (match c.Topology.links with
   | [ Topology.Tree { depth; _ } ] ->
     Alcotest.(check int) "tree depth log2 16" 4 depth
   | _ -> Alcotest.fail "C should be a reduction tree")

let test_topology_direction_names () =
  Alcotest.(check string) "horizontal" "horizontal"
    (Topology.direction_name [| 0; 1 |]);
  Alcotest.(check string) "vertical" "vertical"
    (Topology.direction_name [| 1; 0 |]);
  Alcotest.(check string) "diagonal" "diagonal"
    (Topology.direction_name [| 1; -1 |])

let test_topology_renders () =
  let gemm = Workloads.gemm ~m:16 ~n:16 ~k:16 in
  let d = Search.find_design_exn gemm "MNK-MMT" in
  let s = Format.asprintf "%a" Topology.pp (Topology.describe d) in
  Alcotest.(check bool) "mentions multicast" true
    (let has sub =
       let n = String.length sub and h = String.length s in
       let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     has "multicast bus")

(* ---------------- data reloading ---------------- *)

let test_execute_with_fresh_data () =
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let design = Search.find_design_exn stmt "MNK-SST" in
  let env1 = Exec.alloc_inputs ~seed:1 stmt in
  let env2 = Exec.alloc_inputs ~seed:2 stmt in
  let acc = Accel.generate ~rows:4 ~cols:4 design env1 in
  Alcotest.(check bool) "baked data" true
    (Dense.equal (Exec.run stmt env1) (Accel.execute acc));
  (* same netlist, new data *)
  Alcotest.(check bool) "reloaded data" true
    (Dense.equal (Exec.run stmt env2) (Accel.execute_with acc env2));
  (* and the two results differ, so the reload really happened *)
  Alcotest.(check bool) "results differ" false
    (Dense.equal (Exec.run stmt env1) (Exec.run stmt env2))

let test_execute_with_validation () =
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let design = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:4 ~cols:4 design env in
  (try
     ignore (Accel.execute_with acc [ ("A", List.assoc "A" env) ]);
     Alcotest.fail "expected missing tensor"
   with Invalid_argument _ -> ())

(* ---------------- VCD ---------------- *)

let test_vcd_capture () =
  let open Signal in
  let w = wire 4 in
  let q = reg w -- "counter" in
  assign w (q +: const ~width:4 1);
  let c = Circuit.create ~name:"vcd" ~outputs:[ ("q", q) ] in
  let sim = Sim.create c in
  let vcd = Vcd.create sim c in
  Vcd.cycles vcd 5;
  let s = Vcd.contents vcd in
  let has sub =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (has "$enddefinitions");
  Alcotest.(check bool) "var decl" true (has "$var wire 4");
  Alcotest.(check bool) "counter named" true (has "counter");
  Alcotest.(check bool) "time 3 recorded" true (has "#3");
  Alcotest.(check bool) "binary value" true (has "b0011")

let test_vcd_accelerator_trace () =
  let stmt = Workloads.gemm ~m:2 ~n:2 ~k:2 in
  let design = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:2 ~cols:2 design env in
  let sim = Sim.create acc.Accel.circuit in
  let vcd = Vcd.create sim acc.Accel.circuit in
  Vcd.cycles vcd acc.Accel.total_cycles;
  Alcotest.(check bool) "nonempty trace" true
    (String.length (Vcd.contents vcd) > 500)

(* ---------------- random einsum end-to-end ---------------- *)

(* Random 3-iterator einsum statements: each tensor accesses a random
   full-row-rank subset of iterators, guaranteeing within-bounds indices.
   This stresses classification + generation beyond the Table-II set. *)
let gen_random_stmt =
  QCheck.Gen.(
    let iter_extent = int_range 2 4 in
    let access_rows =
      (* each row is a single iterator (coefficient 1): random selection *)
      list_size (int_range 1 3) (int_range 0 2)
    in
    triple iter_extent iter_extent iter_extent >>= fun (e0, e1, e2) ->
    pair access_rows (pair access_rows access_rows)
    >|= fun (out_rows, (a_rows, b_rows)) ->
    let dedup rows = List.sort_uniq compare rows in
    let mk name rows =
      Access.of_terms name ~depth:3 (List.map (fun j -> [ j ]) (dedup rows))
    in
    let iters = [ Iter.v "i" e0; Iter.v "j" e1; Iter.v "k" e2 ] in
    Stmt.v "random" ~iters ~output:(mk "O" out_rows)
      ~inputs:[ mk "A" a_rows; mk "B" b_rows ])

let prop_random_einsum_end_to_end =
  let arb =
    QCheck.make
      ~print:(fun stmt -> Format.asprintf "%a" Stmt.pp stmt)
      gen_random_stmt
  in
  QCheck.Test.make ~name:"random einsum: generated hardware = golden"
    ~count:25 arb (fun stmt ->
      (* pick the first netlist-supported design over candidate matrices *)
      let rec first = function
        | [] -> None
        | m :: rest ->
          let t = Transform.v stmt ~selected:[| 0; 1; 2 |] ~matrix:m in
          let d = Design.analyze t in
          if Design.netlist_supported d then Some d else first rest
      in
      match first (Search.candidate_matrices ~n:3) with
      | None -> true
      | Some d ->
        let env = Exec.alloc_inputs stmt in
        (match Accel.generate ~rows:10 ~cols:10 d env with
         | acc -> Dense.equal (Exec.run stmt env) (Accel.execute acc)
         | exception Accel.Unsupported _ -> true))

let suite =
  [ Alcotest.test_case "tiling preserves semantics" `Quick
      test_tiling_preserves_semantics;
    Alcotest.test_case "tiling validation" `Quick test_tiling_validation;
    Alcotest.test_case "tiled accelerator (spatial tiles)" `Quick
      test_tiled_accelerator;
    Alcotest.test_case "tiled weight-stationary stages" `Quick
      test_tiled_weight_stationary;
    Alcotest.test_case "tile_to_fit" `Quick test_tile_to_fit;
    Alcotest.test_case "topology: output stationary" `Quick
      test_topology_output_stationary;
    Alcotest.test_case "topology: reduction tree" `Quick
      test_topology_reduction_tree;
    Alcotest.test_case "topology: direction names" `Quick
      test_topology_direction_names;
    Alcotest.test_case "topology: renders" `Quick test_topology_renders;
    Alcotest.test_case "execute_with fresh data" `Quick
      test_execute_with_fresh_data;
    Alcotest.test_case "execute_with validation" `Quick
      test_execute_with_validation;
    Alcotest.test_case "vcd capture" `Quick test_vcd_capture;
    Alcotest.test_case "vcd accelerator trace" `Quick
      test_vcd_accelerator_trace ]
  @ [ QCheck_alcotest.to_alcotest prop_random_einsum_end_to_end ]

(* ---------------- 1-D (linear) arrays ---------------- *)

let test_linear_array_classification () =
  (* GEMV on a linear array: PEs along m, time m+k *)
  let stmt = Workloads.gemv ~m:4 ~k:4 in
  let t =
    Transform.v stmt ~selected:[| 0; 1 |] ~matrix:[ [ 1; 0 ]; [ 1; 1 ] ]
  in
  let d = Design.analyze t in
  (match (Design.find_tensor d "A").Design.dataflow with
   | Dataflow.Unicast -> ()
   | df -> Alcotest.failf "A: expected unicast, got %s" (Dataflow.to_string df));
  (match (Design.find_tensor d "x").Design.dataflow with
   | Dataflow.Systolic { dp; dt } ->
     Alcotest.(check (array int)) "x flows along the line" [| 1; 0 |] dp;
     Alcotest.(check int) "dt" 1 dt
   | df -> Alcotest.failf "x: expected systolic, got %s" (Dataflow.to_string df));
  match (Design.find_tensor d "y").Design.dataflow with
  | Dataflow.Stationary _ -> ()
  | df -> Alcotest.failf "y: expected stationary, got %s" (Dataflow.to_string df)

let test_linear_array_netlist () =
  let stmt = Workloads.gemv ~m:4 ~k:4 in
  let t =
    Transform.v stmt ~selected:[| 0; 1 |] ~matrix:[ [ 1; 0 ]; [ 1; 1 ] ]
  in
  let d = Design.analyze t in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:4 ~cols:1 d env in
  Alcotest.(check bool) "linear array matches golden" true
    (Dense.equal (Exec.run stmt env) (Accel.execute acc))

let test_linear_array_reduction_tree () =
  (* output multicast on a line: y produced by a reduction over the column *)
  let stmt = Workloads.gemv ~m:4 ~k:4 in
  let t =
    Transform.v stmt ~selected:[| 0; 1 |] ~matrix:[ [ 0; 1 ]; [ 1; 0 ] ]
  in
  let d = Design.analyze t in
  (match (Design.find_tensor d "y").Design.dataflow with
   | Dataflow.Multicast { dp } ->
     Alcotest.(check (array int)) "tree along the line" [| 1; 0 |] dp
   | df -> Alcotest.failf "y: expected tree, got %s" (Dataflow.to_string df));
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:4 ~cols:1 d env in
  Alcotest.(check bool) "linear tree matches golden" true
    (Dense.equal (Exec.run stmt env) (Accel.execute acc))

let suite =
  suite
  @ [ Alcotest.test_case "1-D array classification" `Quick
        test_linear_array_classification;
      Alcotest.test_case "1-D array netlist" `Quick test_linear_array_netlist;
      Alcotest.test_case "1-D array reduction tree" `Quick
        test_linear_array_reduction_tree ]

(* ---------------- testbench + critical path ---------------- *)

let test_verilog_testbench () =
  let stmt = Workloads.gemm ~m:3 ~n:3 ~k:3 in
  let d = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:3 ~cols:3 d env in
  let expected = Exec.run stmt env in
  let tb = Accel.verilog_testbench acc ~expected in
  let has sub =
    let n = String.length sub and h = String.length tb in
    let rec go i = i + n <= h && (String.sub tb i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "instantiates dut" true (has "tensorlib_MNK_SST dut(");
  Alcotest.(check bool) "clock generator" true (has "always #5 clock");
  Alcotest.(check bool) "self-checks" true (has "MISMATCH");
  Alcotest.(check bool) "finishes" true (has "$finish");
  (* one check per output element *)
  Alcotest.(check int) "9 comparisons" 9
    (let count = ref 0 and i = ref 0 in
     let sub = "!==" in
     while !i + 3 <= String.length tb do
       if String.sub tb !i 3 = sub then incr count;
       incr i
     done;
     !count)

let test_critical_path () =
  let open Signal in
  (* input -> mul -> add -> reg : path 4 + 2 = 6 *)
  let a = input "cpa" 8 and b = input "cpb" 8 in
  let q = reg ((a *: b) +: a) in
  let c = Circuit.create ~name:"cp" ~outputs:[ ("o", q) ] in
  Alcotest.(check int) "mul+add depth" 6 (Circuit.critical_path c);
  (* registers cut paths: reg between mul and add halves the depth *)
  let q2 = reg (reg (a *: b) +: a) in
  let c2 = Circuit.create ~name:"cp2" ~outputs:[ ("o", q2) ] in
  Alcotest.(check int) "pipelined depth" 4 (Circuit.critical_path c2)

let test_critical_path_tree_deeper () =
  (* reduction trees create deeper cones than systolic accumulators *)
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let env = Exec.alloc_inputs stmt in
  let path name =
    let d = Search.find_design_exn stmt name in
    let acc = Accel.generate ~rows:4 ~cols:4 d env in
    Circuit.critical_path acc.Accel.circuit
  in
  Alcotest.(check bool) "tree design >= systolic design" true
    (path "MNK-MTM" >= path "MNK-SST")

let suite =
  suite
  @ [ Alcotest.test_case "verilog testbench" `Quick test_verilog_testbench;
      Alcotest.test_case "critical path" `Quick test_critical_path;
      Alcotest.test_case "critical path: trees deeper" `Quick
        test_critical_path_tree_deeper ]
