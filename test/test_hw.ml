(* Structural RTL DSL, circuit validation, cycle simulator, Verilog. *)

open Tensorlib
open Signal

let circuit_of outs = Circuit.create ~name:"t" ~outputs:outs

let test_const_masking () =
  let c = const ~width:4 (-1) in
  let s = Sim.create (circuit_of [ ("o", c) ]) in
  Sim.settle s;
  Alcotest.(check int) "masked" 15 (Sim.output s "o");
  Alcotest.(check int) "signed view" (-1) (Sim.output_signed s "o")

let test_arith_ops () =
  let a = input "a" 8 and b = input "b" 8 in
  let outs =
    [ ("add", a +: b); ("sub", a -: b); ("mul", a *: b); ("and_", a &: b);
      ("or_", a |: b); ("xor_", a ^: b); ("eq", eq a b); ("ult", ult a b);
      ("slt", slt a b); ("not_", not_ a) ]
  in
  let s = Sim.create (circuit_of outs) in
  Sim.set_input s "a" 200;
  Sim.set_input s "b" 100;
  Sim.settle s;
  Alcotest.(check int) "add wraps" ((200 + 100) land 255) (Sim.output s "add");
  Alcotest.(check int) "sub" 100 (Sim.output s "sub");
  Alcotest.(check int) "mul wraps" (200 * 100 land 255) (Sim.output s "mul");
  Alcotest.(check int) "and" (200 land 100) (Sim.output s "and_");
  Alcotest.(check int) "or" (200 lor 100) (Sim.output s "or_");
  Alcotest.(check int) "xor" (200 lxor 100) (Sim.output s "xor_");
  Alcotest.(check int) "eq" 0 (Sim.output s "eq");
  Alcotest.(check int) "ult 200<100" 0 (Sim.output s "ult");
  (* signed: 200 = -56 < 100 *)
  Alcotest.(check int) "slt" 1 (Sim.output s "slt");
  Alcotest.(check int) "not" (lnot 200 land 255) (Sim.output s "not_")

let test_width_mismatch () =
  let a = input "aa" 8 and b = input "bb" 4 in
  (try
     ignore (a +: b);
     Alcotest.fail "expected width mismatch"
   with Width_mismatch _ -> ())

let test_mux_select_concat () =
  let sel = input "sel" 1 and x = input "x" 8 in
  let hi = select x ~hi:7 ~lo:4 and lo = select x ~hi:3 ~lo:0 in
  let swapped = concat [ lo; hi ] in
  let m = mux2 sel swapped x in
  let s = Sim.create (circuit_of [ ("o", m); ("b", bit x 7) ]) in
  Sim.set_input s "x" 0xA5;
  Sim.set_input s "sel" 1;
  Sim.settle s;
  Alcotest.(check int) "swapped nibbles" 0x5A (Sim.output s "o");
  Alcotest.(check int) "msb" 1 (Sim.output s "b");
  Sim.set_input s "sel" 0;
  Sim.settle s;
  Alcotest.(check int) "pass through" 0xA5 (Sim.output s "o")

let test_resize () =
  let x = input "x" 4 in
  let s =
    Sim.create
      (circuit_of [ ("u", uresize x 8); ("sg", sresize x 8) ])
  in
  Sim.set_input s "x" 0b1010;
  Sim.settle s;
  Alcotest.(check int) "uresize" 0x0A (Sim.output s "u");
  Alcotest.(check int) "sresize" 0xFA (Sim.output s "sg")

let test_shifts () =
  let x = input "x" 8 in
  let s =
    Sim.create
      (circuit_of
         [ ("l", shift_left x 2); ("r", shift_right_l x 2);
           ("a", shift_right_a x 2) ])
  in
  Sim.set_input s "x" 0x90;
  Sim.settle s;
  Alcotest.(check int) "shl" 0x40 (Sim.output s "l");
  Alcotest.(check int) "shr" 0x24 (Sim.output s "r");
  Alcotest.(check int) "sra sign-fills" 0xE4 (Sim.output s "a")

let test_register_semantics () =
  let en = input "en" 1 and clr = input "clr" 1 and d = input "d" 8 in
  let q = reg ~enable:en ~clear:clr ~clear_to:7 ~init:3 d in
  let s = Sim.create (circuit_of [ ("q", q) ]) in
  Sim.settle s;
  Alcotest.(check int) "init" 3 (Sim.output s "q");
  Sim.set_input s "d" 42;
  Sim.set_input s "en" 0;
  Sim.cycle s;
  Sim.settle s;
  Alcotest.(check int) "enable off holds" 3 (Sim.output s "q");
  Sim.set_input s "en" 1;
  Sim.cycle s;
  Sim.settle s;
  Alcotest.(check int) "enable on loads" 42 (Sim.output s "q");
  Sim.set_input s "clr" 1;
  Sim.cycle s;
  Sim.settle s;
  Alcotest.(check int) "clear wins" 7 (Sim.output s "q")

let test_counter_feedback () =
  let w = wire 8 in
  let q = reg w in
  assign w (q +: const ~width:8 1);
  let s = Sim.create (circuit_of [ ("q", q) ]) in
  Sim.cycles s 10;
  Sim.settle s;
  Alcotest.(check int) "counts" 10 (Sim.output s "q")

let test_register_chain_order () =
  (* both registers must update from pre-edge values: a 2-stage delay *)
  let d = input "d" 8 in
  let r1 = reg d in
  let r2 = reg r1 in
  let s = Sim.create (circuit_of [ ("r2", r2) ]) in
  Sim.set_input s "d" 9;
  Sim.cycle s;
  Sim.settle s;
  Alcotest.(check int) "after 1 cycle" 0 (Sim.output s "r2");
  Sim.cycle s;
  Sim.settle s;
  Alcotest.(check int) "after 2 cycles" 9 (Sim.output s "r2")

let test_unassigned_wire () =
  let w = wire 4 in
  (try
     ignore (Circuit.create ~name:"bad" ~outputs:[ ("o", w) ]);
     Alcotest.fail "expected unassigned wire"
   with Circuit.Unassigned_wire _ -> ())

let test_comb_cycle_detection () =
  let w = wire 4 in
  assign w (w +: const ~width:4 1);
  (try
     ignore (Circuit.create ~name:"cyc" ~outputs:[ ("o", w) ]);
     Alcotest.fail "expected combinational cycle"
   with Circuit.Combinational_cycle _ -> ())

let test_reg_breaks_cycle () =
  let w = wire 4 in
  let q = reg w in
  assign w (q +: const ~width:4 1);
  ignore (Circuit.create ~name:"ok" ~outputs:[ ("o", q) ])

let test_rom () =
  let addr = input "addr" 4 in
  let r = rom ~width:8 [| 5; 6; 7; 8 |] in
  let s = Sim.create (circuit_of [ ("o", ram_read r addr) ]) in
  Sim.set_input s "addr" 2;
  Sim.settle s;
  Alcotest.(check int) "rom read" 7 (Sim.output s "o");
  Sim.set_input s "addr" 9;
  Sim.settle s;
  Alcotest.(check int) "out of range reads 0" 0 (Sim.output s "o")

let test_ram_write () =
  let we = input "we" 1 and addr = input "addr" 2 and d = input "d" 8 in
  let r = ram ~size:4 ~width:8 ~init:(Array.make 4 0) () in
  ram_write r ~we ~addr ~data:d;
  let s = Sim.create (circuit_of [ ("o", ram_read r addr) ]) in
  Sim.set_input s "we" 1;
  Sim.set_input s "addr" 3;
  Sim.set_input s "d" 99;
  Sim.cycle s;
  Sim.set_input s "we" 0;
  Sim.settle s;
  Alcotest.(check int) "written" 99 (Sim.output s "o");
  (* read-modify-write accumulate through async read *)
  let we2 = input "we2" 1 and a2 = input "a2" 2 in
  let r2 = ram ~size:4 ~width:8 ~init:(Array.make 4 0) () in
  let old = ram_read r2 a2 in
  ram_write r2 ~we:we2 ~addr:a2 ~data:(old +: const ~width:8 5);
  let s2 = Sim.create (circuit_of [ ("o", ram_read r2 a2) ]) in
  Sim.set_input s2 "we2" 1;
  Sim.set_input s2 "a2" 1;
  Sim.cycles s2 3;
  Sim.settle s2;
  Alcotest.(check int) "rmw accumulates" 15 (Sim.output s2 "o")

let test_sim_reset () =
  let w = wire 8 in
  let q = reg ~init:5 w in
  assign w (q +: const ~width:8 1);
  let s = Sim.create (circuit_of [ ("q", q) ]) in
  Sim.cycles s 3;
  Sim.reset s;
  Sim.settle s;
  Alcotest.(check int) "reset to init" 5 (Sim.output s "q");
  Alcotest.(check int) "clock reset" 0 (Sim.cycle_count s)

let test_stats () =
  let a = input "a" 8 and b = input "b" 8 in
  let q = reg (a +: b) in
  let c = Circuit.create ~name:"st" ~outputs:[ ("o", mux2 (eq a b) q (a *: b)) ] in
  let st = Circuit.stats c in
  Alcotest.(check int) "regs" 1 st.Circuit.regs;
  Alcotest.(check int) "reg bits" 8 st.Circuit.reg_bits;
  Alcotest.(check int) "adders" 1 st.Circuit.adders;
  Alcotest.(check int) "muls" 1 st.Circuit.multipliers;
  Alcotest.(check int) "muxes" 1 st.Circuit.muxes;
  Alcotest.(check int) "inputs" 2 st.Circuit.inputs

let test_input_width_conflict () =
  let a8 = input "dup" 8 and a4 = input "dup" 4 in
  (try
     ignore
       (Circuit.create ~name:"dup"
          ~outputs:[ ("x", a8); ("y", uresize a4 8) ]);
     Alcotest.fail "expected input width conflict"
   with Invalid_argument _ -> ())

let test_verilog_emission () =
  let a = input "a" 8 and b = input "b" 8 in
  let w = wire 8 in
  let q = reg ~enable:(eq a b) w -- "state" in
  assign w (q +: (a *: b));
  let r = rom ~name:"table" ~width:8 [| 1; 2; 3 |] in
  let c =
    Circuit.create ~name:"emit"
      ~outputs:[ ("out", q); ("lut", ram_read r (uresize (bit a 0) 2)) ]
  in
  let v = Verilog.to_string c in
  let has sub =
    let n = String.length sub and h = String.length v in
    let rec go i = i + n <= h && (String.sub v i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module header" true (has "module emit(");
  Alcotest.(check bool) "clock port" true (has "input clock");
  Alcotest.(check bool) "named reg" true (has "reg [7:0] state");
  Alcotest.(check bool) "always block" true (has "always @(posedge clock)");
  Alcotest.(check bool) "rom array" true (has "reg [7:0] table [0:2]");
  Alcotest.(check bool) "output assign" true (has "assign out = ");
  Alcotest.(check bool) "endmodule" true (has "endmodule")

(* properties: simulator vs direct evaluation of random expression DAGs *)

type expr =
  | X
  | Y
  | K of int
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Mux of expr * expr * expr

let rec gen_expr depth =
  QCheck.Gen.(
    if depth = 0 then
      oneof [ return X; return Y; map (fun k -> K k) (int_range 0 255) ]
    else
      frequency
        [ (1, return X); (1, return Y);
          (2, map2 (fun a b -> Add (a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1)));
          (2, map2 (fun a b -> Sub (a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1)));
          (2, map2 (fun a b -> Mul (a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1)));
          (1,
           map3
             (fun a b c -> Mux (a, b, c))
             (gen_expr (depth - 1)) (gen_expr (depth - 1)) (gen_expr (depth - 1))) ])

let rec build_signal x y = function
  | X -> x
  | Y -> y
  | K k -> const ~width:8 k
  | Add (a, b) -> build_signal x y a +: build_signal x y b
  | Sub (a, b) -> build_signal x y a -: build_signal x y b
  | Mul (a, b) -> build_signal x y a *: build_signal x y b
  | Mux (c, a, b) ->
    mux2
      (bit (build_signal x y c) 0)
      (build_signal x y a) (build_signal x y b)

let rec eval_expr x y = function
  | X -> x
  | Y -> y
  | K k -> k
  | Add (a, b) -> (eval_expr x y a + eval_expr x y b) land 255
  | Sub (a, b) -> (eval_expr x y a - eval_expr x y b) land 255
  | Mul (a, b) -> eval_expr x y a * eval_expr x y b land 255
  | Mux (c, a, b) ->
    if eval_expr x y c land 1 <> 0 then eval_expr x y a else eval_expr x y b

let prop_sim_matches_eval =
  let arb =
    QCheck.make
      ~print:(fun _ -> "<expr>")
      QCheck.Gen.(triple (gen_expr 4) (int_range 0 255) (int_range 0 255))
  in
  QCheck.Test.make ~name:"netlist sim = direct evaluation" ~count:100 arb
    (fun (e, xv, yv) ->
      let x = input "x" 8 and y = input "y" 8 in
      let s = Sim.create (circuit_of [ ("o", build_signal x y e) ]) in
      (* constant-only expressions have no input ports *)
      (try Sim.set_input s "x" xv with Not_found -> ());
      (try Sim.set_input s "y" yv with Not_found -> ());
      Sim.settle s;
      Sim.output s "o" = eval_expr xv yv e)

let prop_signed_roundtrip =
  QCheck.Test.make ~name:"to_signed inverts mask" ~count:200
    QCheck.(pair (int_range 1 30) (int_range (-10000) 10000))
    (fun (w, v) ->
      let bound = 1 lsl (w - 1) in
      let v = ((v mod bound) + bound) mod bound - (bound / 2) in
      Signal.to_signed w (Signal.mask_to_width w v) = v)

let suite =
  [ Alcotest.test_case "const masking" `Quick test_const_masking;
    Alcotest.test_case "arithmetic ops" `Quick test_arith_ops;
    Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
    Alcotest.test_case "mux/select/concat" `Quick test_mux_select_concat;
    Alcotest.test_case "resize" `Quick test_resize;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "register semantics" `Quick test_register_semantics;
    Alcotest.test_case "counter feedback" `Quick test_counter_feedback;
    Alcotest.test_case "register chain order" `Quick test_register_chain_order;
    Alcotest.test_case "unassigned wire" `Quick test_unassigned_wire;
    Alcotest.test_case "comb cycle detection" `Quick test_comb_cycle_detection;
    Alcotest.test_case "reg breaks cycle" `Quick test_reg_breaks_cycle;
    Alcotest.test_case "rom" `Quick test_rom;
    Alcotest.test_case "ram write + rmw" `Quick test_ram_write;
    Alcotest.test_case "sim reset" `Quick test_sim_reset;
    Alcotest.test_case "circuit stats" `Quick test_stats;
    Alcotest.test_case "input width conflict" `Quick test_input_width_conflict;
    Alcotest.test_case "verilog emission" `Quick test_verilog_emission ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_sim_matches_eval; prop_signed_roundtrip ]

(* ---------------- netlist optimisation ---------------- *)

let test_rewrite_folds_constants () =
  let a = const ~width:8 3 and b = const ~width:8 4 in
  let x = input "x" 8 in
  let e = (a *: b) +: (x *: const ~width:8 1) +: (x &: const ~width:8 0) in
  let c = circuit_of [ ("o", e) ] in
  let opt = Tensorlib.Rewrite.circuit c in
  let st = Circuit.stats opt in
  (* x*1 -> x, x&0 -> 0, 3*4 -> 12, +0 -> identity: one adder remains *)
  Alcotest.(check int) "muls gone" 0 st.Circuit.multipliers;
  Alcotest.(check int) "one adder" 1 st.Circuit.adders;
  let s = Sim.create opt in
  Sim.set_input s "x" 5;
  Sim.settle s;
  Alcotest.(check int) "value preserved" 17 (Sim.output s "o")

let test_rewrite_mux_collapse () =
  let x = input "x" 8 and y = input "y" 8 in
  let m1 = mux2 vdd x y in
  let m2 = mux2 gnd x y in
  let m3 = mux2 (bit x 0) y y in
  let c = circuit_of [ ("a", m1); ("b", m2); ("c", m3) ] in
  let opt = Tensorlib.Rewrite.circuit c in
  Alcotest.(check int) "all muxes gone" 0 (Circuit.stats opt).Circuit.muxes

let test_rewrite_preserves_registers () =
  let w = wire 8 in
  let q = reg ~init:2 w -- "ctr" in
  assign w (q +: const ~width:8 3);
  let c = circuit_of [ ("q", q) ] in
  let opt = Tensorlib.Rewrite.circuit c in
  let s0 = Sim.create c and s1 = Sim.create opt in
  Sim.cycles s0 5;
  Sim.cycles s1 5;
  Sim.settle s0;
  Sim.settle s1;
  Alcotest.(check int) "same behaviour" (Sim.output s0 "q")
    (Sim.output s1 "q")

let test_rewrite_accelerator_equivalent () =
  let open Tensorlib in
  let stmt = Workloads.gemm ~m:3 ~n:3 ~k:3 in
  let d = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:3 ~cols:3 d env in
  let before = acc.Accel.circuit in
  let opt, ram_map = Rewrite.circuit_with_ram_map before in
  let removed = Rewrite.count_removed ~before ~after:opt in
  Alcotest.(check bool) "never adds cells" true (removed >= 0);
  (* run both; compare every output bank's final contents *)
  let s0 = Sim.create before and s1 = Sim.create opt in
  Sim.cycles s0 (acc.Accel.total_cycles + 1);
  Sim.cycles s1 (acc.Accel.total_cycles + 1);
  List.iter
    (fun (name, bank) ->
      match List.assoc_opt bank ram_map with
      | None -> Alcotest.failf "bank %s not remapped" name
      | Some nb ->
        Alcotest.(check (array int)) name
          (Sim.ram_contents s0 bank)
          (Sim.ram_contents s1 nb))
    acc.Accel.banks

let prop_rewrite_equivalent =
  let arb =
    QCheck.make
      ~print:(fun _ -> "<expr>")
      QCheck.Gen.(triple (gen_expr 4) (int_range 0 255) (int_range 0 255))
  in
  QCheck.Test.make ~name:"optimised netlist = original" ~count:60 arb
    (fun (e, xv, yv) ->
      let x = input "x" 8 and y = input "y" 8 in
      let c = circuit_of [ ("o", build_signal x y e) ] in
      let opt = Tensorlib.Rewrite.circuit c in
      let run c =
        let s = Sim.create c in
        (try Sim.set_input s "x" xv with Not_found -> ());
        (try Sim.set_input s "y" yv with Not_found -> ());
        Sim.settle s;
        Sim.output s "o"
      in
      run c = run opt)

let suite =
  suite
  @ [ Alcotest.test_case "rewrite: constant folding" `Quick
        test_rewrite_folds_constants;
      Alcotest.test_case "rewrite: mux collapse" `Quick
        test_rewrite_mux_collapse;
      Alcotest.test_case "rewrite: registers preserved" `Quick
        test_rewrite_preserves_registers;
      Alcotest.test_case "rewrite: accelerator equivalence" `Quick
        test_rewrite_accelerator_equivalent;
      QCheck_alcotest.to_alcotest prop_rewrite_equivalent ]

(* ---------------- diagnostics content ---------------- *)

let contains hay sub =
  let n = String.length sub and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = sub || go (i + 1)) in
  go 0

let test_unassigned_wire_message () =
  let x = input "x" 8 in
  let dangling = wire 8 in
  let stage = (x +: dangling) -- "adder_stage" in
  match Circuit.create ~name:"diag" ~outputs:[ ("result", stage) ] with
  | _ -> Alcotest.fail "expected unassigned wire"
  | exception Circuit.Unassigned_wire msg ->
    Alcotest.(check bool) "names the output" true (contains msg "\"result\"");
    Alcotest.(check bool) "names the nearest named signal" true
      (contains msg "nearest named signal adder_stage")

let test_comb_cycle_message () =
  let x = input "x" 8 and y = input "y" 8 in
  let w = wire 8 in
  let a = (w +: x) -- "stage_a" in
  let b = (a *: y) -- "stage_b" in
  assign w b;
  match Circuit.create ~name:"diag" ~outputs:[ ("o", b) ] with
  | _ -> Alcotest.fail "expected combinational cycle"
  | exception Circuit.Combinational_cycle msg ->
    Alcotest.(check bool) "full path: stage_a" true (contains msg "stage_a");
    Alcotest.(check bool) "full path: stage_b" true (contains msg "stage_b");
    let hops = String.split_on_char '>' msg in
    Alcotest.(check bool) "at least one hop" true (List.length hops >= 3);
    (* the path closes on the signal it started from *)
    let first = String.trim (List.hd hops) in
    let first = String.sub first 0 (String.length first - 2) in
    let last = String.trim (List.nth hops (List.length hops - 1)) in
    Alcotest.(check string) "cycle closes" first last

(* ---------------- rewrite properties ---------------- *)

let prop_rewrite_idempotent =
  let arb =
    QCheck.make ~print:(fun _ -> "<expr>") (gen_expr 4)
  in
  QCheck.Test.make ~name:"rewrite is idempotent and never adds cells"
    ~count:60 arb (fun e ->
      let x = input "x" 8 and y = input "y" 8 in
      let c = circuit_of [ ("o", build_signal x y e) ] in
      let opt = Tensorlib.Rewrite.circuit c in
      let opt2 = Tensorlib.Rewrite.circuit opt in
      Tensorlib.Rewrite.count_removed ~before:c ~after:opt >= 0
      && Tensorlib.Rewrite.count_removed ~before:opt ~after:opt2 = 0)

let rewritten_accel_equivalent stmt =
  let open Tensorlib in
  let _, d =
    match
      List.filter (fun (_, d) -> Design.netlist_supported d)
        (Search.all_designs stmt)
    with
    | [] -> Alcotest.fail "no supported design"
    | hd :: _ -> hd
  in
  List.iter
    (fun seed ->
      let env = Exec.alloc_inputs ~seed stmt in
      let acc = Accel.generate ~rows:8 ~cols:8 d env in
      let before = acc.Accel.circuit in
      let opt, ram_map = Rewrite.circuit_with_ram_map before in
      (* a second pass finds nothing left to remove *)
      Alcotest.(check int) "idempotent on accelerator" 0
        (Rewrite.count_removed ~before:opt ~after:(Rewrite.circuit opt));
      let s0 = Sim.create before and s1 = Sim.create opt in
      Sim.cycles s0 (acc.Accel.total_cycles + 1);
      Sim.cycles s1 (acc.Accel.total_cycles + 1);
      List.iter
        (fun (name, bank) ->
          match List.assoc_opt bank ram_map with
          | None -> Alcotest.failf "bank %s not remapped" name
          | Some nb ->
            Alcotest.(check (array int)) name
              (Sim.ram_contents s0 bank)
              (Sim.ram_contents s1 nb))
        acc.Accel.banks)
    [ 11; 23 ]

let test_rewrite_gemm_random_stimulus () =
  rewritten_accel_equivalent (Tensorlib.Workloads.gemm ~m:3 ~n:3 ~k:3)

let test_rewrite_mttkrp_random_stimulus () =
  rewritten_accel_equivalent
    (Tensorlib.Workloads.mttkrp ~i:3 ~j:3 ~k:3 ~l:3)

(* ---------------- verilog name handling ---------------- *)

let test_verilog_name_sanitisation () =
  (* keyword-named, space-separated and colliding identifiers, plus a
     signal fighting over the implicit clock port *)
  let kw = input "module" 8 in
  let sp = input "a b" 8 in
  let us = input "a_b" 8 in
  let ck = input "clock" 1 in
  let q = reg ~enable:ck (sp +: us) -- "begin" in
  let c =
    Circuit.create ~name:"names" ~outputs:[ ("end", q); ("a_b", kw) ]
  in
  let v = Verilog.to_string c in
  let has sub = contains v sub in
  (* inputs are allocated in sorted order: "a b", "a_b", "clock", "module" *)
  Alcotest.(check bool) "space sanitised" true (has "input [7:0] a_b,");
  Alcotest.(check bool) "collision suffixed" true (has "input [7:0] a_b_1");
  Alcotest.(check bool) "clock port stays clean" true (has "input clock,");
  Alcotest.(check bool) "clock collision renamed" true (has "input clock_1");
  Alcotest.(check bool) "keyword input renamed" true
    (has "input [7:0] module_1");
  Alcotest.(check bool) "keyword reg renamed" true (has "reg [7:0] begin_1");
  Alcotest.(check bool) "keyword output renamed" true
    (has "output [7:0] end_1");
  Alcotest.(check bool) "output collides with inputs" true
    (has "output [7:0] a_b_2");
  Alcotest.(check bool) "output assigns renamed ports" true
    (has "assign a_b_2 = module_1;");
  Alcotest.(check bool) "enable uses renamed clock" true (has "if (clock_1)");
  (* no raw keyword survives as an identifier *)
  Alcotest.(check bool) "no bare begin decl" false (has "reg [7:0] begin ");
  Alcotest.(check bool) "no bare module port" false (has "input [7:0] module,");
  (* emission is deterministic *)
  Alcotest.(check string) "deterministic" v (Verilog.to_string c)

let test_verilog_identifiers_unique () =
  (* every declared identifier in the emitted Verilog is unique *)
  let x = input "s1" 8 in
  let a = (x +: x) -- "dup" in
  let b = (x *: x) -- "dup" in
  let q = reg (a +: b) -- "s2" in
  let c = Circuit.create ~name:"uniq" ~outputs:[ ("dup", q) ] in
  let v = Verilog.to_string c in
  (* a declaration line is "<kw> [hi:lo] <ident> ..." with the width
     optional; collect every declared identifier *)
  let decl_ident line =
    let words =
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun w -> w <> "")
    in
    match words with
    | kw :: rest when List.mem kw [ "wire"; "reg"; "input"; "output" ] ->
      let rest =
        match rest with
        | w :: tl when String.length w > 0 && w.[0] = '[' -> tl
        | _ -> rest
      in
      (match rest with
       | id :: _ ->
         Some
           (String.concat ""
              (String.split_on_char ','
                 (String.concat "" (String.split_on_char ';' id))))
       | [] -> None)
    | _ -> None
  in
  let names =
    List.filter_map decl_ident (String.split_on_char '\n' v)
    |> List.filter (fun s -> s <> "")
  in
  let sorted = List.sort compare names in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
    | _ -> true
  in
  Alcotest.(check bool) "identifiers unique" true (no_dup sorted);
  Alcotest.(check bool) "nonempty" true (List.length names > 3)

let suite =
  suite
  @ [ Alcotest.test_case "unassigned wire message" `Quick
        test_unassigned_wire_message;
      Alcotest.test_case "comb cycle message" `Quick test_comb_cycle_message;
      Alcotest.test_case "rewrite: gemm random stimulus" `Quick
        test_rewrite_gemm_random_stimulus;
      Alcotest.test_case "rewrite: mttkrp random stimulus" `Quick
        test_rewrite_mttkrp_random_stimulus;
      Alcotest.test_case "verilog name sanitisation" `Quick
        test_verilog_name_sanitisation;
      Alcotest.test_case "verilog identifiers unique" `Quick
        test_verilog_identifiers_unique;
      QCheck_alcotest.to_alcotest prop_rewrite_idempotent ]

let test_reset_keeps_constants () =
  (* the compiled schedule sets constants once; reset must preserve them *)
  let w = wire 8 in
  let q = reg w in
  assign w (q +: const ~width:8 3);
  let s = Sim.create (circuit_of [ ("q", q) ]) in
  Sim.cycles s 4;
  Sim.reset s;
  Sim.cycles s 2;
  Sim.settle s;
  Alcotest.(check int) "counts by 3 after reset" 6 (Sim.output s "q")

let suite =
  suite
  @ [ Alcotest.test_case "reset keeps constants" `Quick
        test_reset_keeps_constants ]
