(* Tensor-algebra IR: accesses, shapes, dense tensors, golden executor. *)

open Tensorlib

let test_iter () =
  let i = Iter.v "k" 4 in
  Alcotest.(check string) "name" "k" i.Iter.name;
  Alcotest.(check int) "extent" 4 i.Iter.extent;
  Alcotest.check_raises "bad extent"
    (Invalid_argument "Iter.v: extent must be positive") (fun () ->
      ignore (Iter.v "x" 0));
  let nest = [ Iter.v "a" 2; Iter.v "b" 3 ] in
  Alcotest.(check int) "index_of" 1 (Iter.index_of nest "b");
  Alcotest.check_raises "index_of missing" Not_found (fun () ->
      ignore (Iter.index_of nest "z"))

let test_access_index () =
  (* Conv2D input A[c, y+p, x+q] over (k,c,y,x,p,q) *)
  let a = Access.of_terms "A" ~depth:6 [ [ 1 ]; [ 2; 4 ]; [ 3; 5 ] ] in
  Alcotest.(check int) "rank" 3 (Access.rank a);
  Alcotest.(check (array int)) "index" [| 7; 5; 9 |]
    (Access.index a [| 0; 7; 3; 4; 2; 5 |]);
  Alcotest.check_raises "bad depth"
    (Invalid_argument "Access.index: bad depth") (fun () ->
      ignore (Access.index a [| 0 |]))

let test_access_shape () =
  let stmt = Workloads.conv2d ~k:4 ~c:3 ~y:5 ~x:6 ~p:3 ~q:3 in
  let input = List.hd stmt.Stmt.inputs in
  Alcotest.(check (array int)) "conv input shape (halo)" [| 3; 7; 8 |]
    (Access.shape input stmt.Stmt.iters);
  Alcotest.(check (array int)) "conv output shape" [| 4; 5; 6 |]
    (Access.shape stmt.Stmt.output stmt.Stmt.iters)

let test_stmt_table2 () =
  (* all six Table II workloads build and render *)
  let formulas =
    List.map
      (fun (name, stmt) -> (name, Format.asprintf "%a" Stmt.pp stmt))
      [ ("GEMM", Workloads.gemm ~m:2 ~n:2 ~k:2);
        ("BGEMV", Workloads.batched_gemv ~m:2 ~n:2 ~k:2);
        ("Conv2D", Workloads.conv2d ~k:2 ~c:2 ~y:2 ~x:2 ~p:2 ~q:2);
        ("DWConv", Workloads.depthwise_conv ~k:2 ~y:2 ~x:2 ~p:2 ~q:2);
        ("MTTKRP", Workloads.mttkrp ~i:2 ~j:2 ~k:2 ~l:2);
        ("TTMc", Workloads.ttmc ~i:2 ~j:2 ~k:2 ~l:2 ~m:2) ]
  in
  Alcotest.(check string) "gemm formula" "C[m, n] += A[m, k] * B[n, k]"
    (List.assoc "GEMM" formulas);
  Alcotest.(check string) "conv formula"
    "C[k, y, x] += A[c, y+p, x+q] * B[k, c, p, q]"
    (List.assoc "Conv2D" formulas);
  Alcotest.(check string) "mttkrp formula"
    "D[i, j] += A[i, k, l] * B[k, j] * C[l, j]"
    (List.assoc "MTTKRP" formulas)

let test_stmt_domain () =
  let stmt = Workloads.gemm ~m:3 ~n:4 ~k:5 in
  Alcotest.(check int) "domain size" 60 (Stmt.domain_size stmt);
  let count = ref 0 in
  Stmt.iter_domain stmt (fun _ -> incr count);
  Alcotest.(check int) "iter_domain count" 60 !count;
  (* lexicographic order: first point all zeros, last all max *)
  let first = ref None and last = ref [||] in
  Stmt.iter_domain stmt (fun x ->
      if !first = None then first := Some (Array.copy x);
      last := Array.copy x);
  Alcotest.(check (array int)) "first" [| 0; 0; 0 |]
    (Option.get !first);
  Alcotest.(check (array int)) "last" [| 2; 3; 4 |] !last

let test_dense () =
  let t = Dense.create [| 2; 3 |] in
  Dense.set t [| 1; 2 |] 42;
  Alcotest.(check int) "get" 42 (Dense.get t [| 1; 2 |]);
  Alcotest.(check int) "flat offset" 5 (Dense.offset t [| 1; 2 |]);
  Alcotest.(check int) "size" 6 (Dense.size t);
  Alcotest.(check (array int)) "strides" [| 3; 1 |] (Dense.strides t);
  Alcotest.check_raises "oob"
    (Invalid_argument
       "Dense.offset: index 3 out of bounds [0,3) at dim 1") (fun () ->
      ignore (Dense.get t [| 0; 3 |]));
  let u = Dense.copy t in
  Dense.set u [| 0; 0 |] 1;
  Alcotest.(check int) "copy is deep" 0 (Dense.get t [| 0; 0 |]);
  let m = Dense.map (fun v -> v * 2) t in
  Alcotest.(check int) "map" 84 (Dense.get m [| 1; 2 |]);
  let acc = ref 0 in
  Dense.iteri (fun idx v -> acc := !acc + v + idx.(0)) t;
  Alcotest.(check int) "iteri" (42 + 3) !acc

let test_exec_gemm () =
  (* 2x2x2 GEMM against hand computation; note B is indexed [n,k] *)
  let stmt = Workloads.gemm ~m:2 ~n:2 ~k:2 in
  let a = Dense.init [| 2; 2 |] (fun i -> (i.(0) * 2) + i.(1) + 1) in
  (* A = [1 2; 3 4] *)
  let b = Dense.init [| 2; 2 |] (fun i -> (i.(0) * 2) + i.(1) + 5) in
  (* B[n,k] = [5 6; 7 8] *)
  let out = Exec.run stmt [ ("A", a); ("B", b) ] in
  (* C[m,n] = sum_k A[m,k] * B[n,k] *)
  Alcotest.(check int) "C00" ((1 * 5) + (2 * 6)) (Dense.get out [| 0; 0 |]);
  Alcotest.(check int) "C01" ((1 * 7) + (2 * 8)) (Dense.get out [| 0; 1 |]);
  Alcotest.(check int) "C10" ((3 * 5) + (4 * 6)) (Dense.get out [| 1; 0 |]);
  Alcotest.(check int) "C11" ((3 * 7) + (4 * 8)) (Dense.get out [| 1; 1 |])

let test_exec_mttkrp () =
  (* three-input product: D[i,j] += A[i,k,l] B[k,j] C[l,j] *)
  let stmt = Workloads.mttkrp ~i:1 ~j:1 ~k:2 ~l:2 in
  let a = Dense.init [| 1; 2; 2 |] (fun i -> i.(1) + i.(2) + 1) in
  let b = Dense.init [| 2; 1 |] (fun i -> i.(0) + 1) in
  let c = Dense.init [| 2; 1 |] (fun i -> i.(0) + 2) in
  let out = Exec.run stmt [ ("A", a); ("B", b); ("C", c) ] in
  (* sum over k,l of A[0,k,l]*B[k,0]*C[l,0]:
     (k,l)=(0,0):1*1*2 (0,1):2*1*3 (1,0):2*2*2 (1,1):3*2*3 = 2+6+8+18=34 *)
  Alcotest.(check int) "D00" 34 (Dense.get out [| 0; 0 |])

let test_exec_deterministic () =
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let e1 = Exec.alloc_inputs ~seed:7 stmt in
  let e2 = Exec.alloc_inputs ~seed:7 stmt in
  Alcotest.(check bool) "same seed, same data" true
    (Dense.equal (List.assoc "A" e1) (List.assoc "A" e2));
  let e3 = Exec.alloc_inputs ~seed:8 stmt in
  Alcotest.(check bool) "different seed differs" false
    (Dense.equal (List.assoc "A" e1) (List.assoc "A" e3))

let test_exec_accumulates () =
  let stmt = Workloads.gemm ~m:2 ~n:2 ~k:2 in
  let env = Exec.alloc_inputs stmt in
  let out = Exec.alloc_output stmt in
  Exec.run_with stmt env out;
  let snapshot = Dense.copy out in
  Exec.run_with stmt env out;
  let doubled = Dense.map (fun v -> v * 2) snapshot in
  Alcotest.(check bool) "second run accumulates" true
    (Dense.equal out doubled)

let test_resnet_shapes () =
  let l2 = Workloads.resnet_layer2 in
  Alcotest.(check int) "layer2 macs" (64 * 64 * 56 * 56 * 3 * 3)
    (Stmt.domain_size l2);
  let l5 = Workloads.resnet_layer5 in
  let x = List.find (fun i -> i.Iter.name = "x") l5.Stmt.iters in
  Alcotest.(check int) "layer5 x=7" 7 x.Iter.extent

(* properties *)

let prop_gemm_matches_naive =
  QCheck.Test.make ~name:"executor matches naive triple loop" ~count:30
    QCheck.(triple (int_range 1 5) (int_range 1 5) (int_range 1 5))
    (fun (m, n, k) ->
      let stmt = Workloads.gemm ~m ~n ~k in
      let env = Exec.alloc_inputs stmt in
      let a = List.assoc "A" env and b = List.assoc "B" env in
      let out = Exec.run stmt env in
      let ok = ref true in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let expect = ref 0 in
          for kk = 0 to k - 1 do
            expect := !expect + (Dense.get a [| i; kk |] * Dense.get b [| j; kk |])
          done;
          if Dense.get out [| i; j |] <> !expect then ok := false
        done
      done;
      !ok)

let prop_shape_bounds_indices =
  QCheck.Test.make ~name:"every access stays within its shape" ~count:20
    QCheck.(int_range 1 4)
    (fun s ->
      let stmt = Workloads.conv2d ~k:s ~c:s ~y:s ~x:s ~p:2 ~q:2 in
      List.for_all
        (fun access ->
          let shape = Access.shape access stmt.Stmt.iters in
          let ok = ref true in
          Stmt.iter_domain stmt (fun x ->
              let idx = Access.index access x in
              Array.iteri
                (fun d v -> if v < 0 || v >= shape.(d) then ok := false)
                idx);
          !ok)
        (Stmt.tensors stmt))

let suite =
  [ Alcotest.test_case "iterators" `Quick test_iter;
    Alcotest.test_case "access index" `Quick test_access_index;
    Alcotest.test_case "access shape" `Quick test_access_shape;
    Alcotest.test_case "table II formulas" `Quick test_stmt_table2;
    Alcotest.test_case "statement domain" `Quick test_stmt_domain;
    Alcotest.test_case "dense tensors" `Quick test_dense;
    Alcotest.test_case "golden gemm" `Quick test_exec_gemm;
    Alcotest.test_case "golden mttkrp" `Quick test_exec_mttkrp;
    Alcotest.test_case "deterministic inputs" `Quick test_exec_deterministic;
    Alcotest.test_case "run_with accumulates" `Quick test_exec_accumulates;
    Alcotest.test_case "resnet shapes" `Quick test_resnet_shapes ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_gemm_matches_naive; prop_shape_bounds_indices ]
