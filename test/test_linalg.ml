(* Unit and property tests for the exact linear-algebra substrate. *)

open Tensorlib

let rat = Alcotest.testable Rat.pp Rat.equal

let test_rat_make () =
  Alcotest.check rat "normalise 2/4" (Rat.make 1 2) (Rat.make 2 4);
  Alcotest.check rat "negative den" (Rat.make (-1) 2) (Rat.make 1 (-2));
  Alcotest.check rat "zero" Rat.zero (Rat.make 0 17);
  Alcotest.check rat "gcd" (Rat.make 3 7) (Rat.make 21 49);
  Alcotest.check_raises "den 0" Rat.Division_by_zero (fun () ->
      ignore (Rat.make 1 0))

let test_rat_arith () =
  let half = Rat.make 1 2 and third = Rat.make 1 3 in
  Alcotest.check rat "1/2+1/3" (Rat.make 5 6) (Rat.add half third);
  Alcotest.check rat "1/2-1/3" (Rat.make 1 6) (Rat.sub half third);
  Alcotest.check rat "1/2*1/3" (Rat.make 1 6) (Rat.mul half third);
  Alcotest.check rat "1/2 / 1/3" (Rat.make 3 2) (Rat.div half third);
  Alcotest.check rat "inv" (Rat.make 2 1) (Rat.inv half);
  Alcotest.check rat "neg" (Rat.make (-1) 2) (Rat.neg half);
  Alcotest.check rat "abs" half (Rat.abs (Rat.neg half));
  Alcotest.check_raises "div by zero" Rat.Division_by_zero (fun () ->
      ignore (Rat.div half Rat.zero))

let test_rat_compare () =
  Alcotest.(check int) "1/2 < 2/3" (-1) (Rat.compare (Rat.make 1 2) (Rat.make 2 3));
  Alcotest.(check int) "sign neg" (-1) (Rat.sign (Rat.make (-3) 4));
  Alcotest.(check bool) "is_integer 4/2" true (Rat.is_integer (Rat.make 4 2));
  Alcotest.(check bool) "is_integer 1/2" false (Rat.is_integer (Rat.make 1 2));
  Alcotest.(check int) "to_int" 7 (Rat.to_int (Rat.make 14 2));
  Alcotest.check_raises "to_int fraction"
    (Invalid_argument "Rat.to_int: not an integer") (fun () ->
      ignore (Rat.to_int (Rat.make 1 2)))

let test_rat_to_float () =
  Alcotest.(check (float 1e-12)) "to_float" 0.25 (Rat.to_float (Rat.make 1 4))

let test_vec_basic () =
  let v = Vec.of_ints [ 1; 2; 3 ] and w = Vec.of_ints [ 4; 5; 6 ] in
  Alcotest.check rat "dot" (Rat.of_int 32) (Vec.dot v w);
  Alcotest.(check bool) "add" true
    (Vec.equal (Vec.add v w) (Vec.of_ints [ 5; 7; 9 ]));
  Alcotest.(check bool) "scale" true
    (Vec.equal (Vec.scale (Rat.of_int 2) v) (Vec.of_ints [ 2; 4; 6 ]));
  Alcotest.(check bool) "zero" true (Vec.is_zero (Vec.make 3 Rat.zero));
  Alcotest.(check bool) "basis" true
    (Vec.equal (Vec.basis 3 1) (Vec.of_ints [ 0; 1; 0 ]))

let test_vec_to_integer () =
  let v = Vec.of_list [ Rat.make 1 2; Rat.make (-1) 3; Rat.zero ] in
  Alcotest.(check (array int)) "primitive" [| 3; -2; 0 |] (Vec.to_integer v);
  let neg = Vec.of_ints [ -2; 4 ] in
  Alcotest.(check (array int)) "orientation" [| 1; -2 |] (Vec.to_integer neg);
  Alcotest.check_raises "zero vector"
    (Invalid_argument "Vec.to_integer: zero vector") (fun () ->
      ignore (Vec.to_integer (Vec.make 2 Rat.zero)))

let test_mat_basic () =
  let a = Mat.of_int_rows [ [ 1; 2 ]; [ 3; 4 ] ] in
  Alcotest.check rat "det" (Rat.of_int (-2)) (Mat.det a);
  Alcotest.(check int) "rank" 2 (Mat.rank a);
  let at = Mat.transpose a in
  Alcotest.check rat "transpose entry" (Rat.of_int 3) (Mat.get at 0 1);
  let prod = Mat.mul a (Mat.identity 2) in
  Alcotest.(check bool) "a*I = a" true (Mat.equal prod a)

let test_mat_inverse () =
  let a = Mat.of_int_rows [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 1; 1 ] ] in
  (match Mat.inverse a with
   | None -> Alcotest.fail "invertible matrix reported singular"
   | Some inv ->
     Alcotest.(check bool) "a * a^-1 = I" true
       (Mat.equal (Mat.mul a inv) (Mat.identity 3)));
  let sing = Mat.of_int_rows [ [ 1; 2 ]; [ 2; 4 ] ] in
  Alcotest.(check bool) "singular" true (Mat.inverse sing = None)

let test_mat_null_space () =
  (* GEMM A[m,k] access over (m,n,k): null space is the n direction *)
  let a = Mat.of_int_rows [ [ 1; 0; 0 ]; [ 0; 0; 1 ] ] in
  match Mat.null_space a with
  | [ v ] ->
    Alcotest.(check (array int)) "null dir" [| 0; 1; 0 |] (Vec.to_integer v)
  | basis ->
    Alcotest.failf "expected 1 basis vector, got %d" (List.length basis)

let test_mat_solve () =
  let a = Mat.of_int_rows [ [ 2; 1 ]; [ 1; 3 ] ] in
  let b = Vec.of_ints [ 5; 10 ] in
  (match Mat.solve a b with
   | None -> Alcotest.fail "solvable system reported inconsistent"
   | Some x ->
     Alcotest.(check bool) "a x = b" true (Vec.equal (Mat.mul_vec a x) b));
  let inconsistent = Mat.of_int_rows [ [ 1; 1 ]; [ 1; 1 ] ] in
  Alcotest.(check bool) "inconsistent" true
    (Mat.solve inconsistent (Vec.of_ints [ 1; 2 ]) = None)

let test_mat_pseudo_inverse () =
  (* For invertible matrices the pseudo-inverse is the inverse. *)
  let a = Mat.of_int_rows [ [ 1; 2 ]; [ 3; 5 ] ] in
  let p = Mat.pseudo_inverse a in
  Alcotest.(check bool) "pinv = inv" true
    (Mat.equal (Mat.mul a p) (Mat.identity 2));
  (* Moore–Penrose condition A A+ A = A for a rank-deficient matrix *)
  let r = Mat.of_int_rows [ [ 1; 2 ]; [ 2; 4 ] ] in
  let rp = Mat.pseudo_inverse r in
  Alcotest.(check bool) "A A+ A = A" true
    (Mat.equal (Mat.mul r (Mat.mul rp r)) r);
  (* zero matrix *)
  let z = Mat.zero ~rows:2 ~cols:3 in
  let zp = Mat.pseudo_inverse z in
  Alcotest.(check int) "zero pinv rows" 3 (Mat.rows zp);
  Alcotest.(check int) "zero pinv cols" 2 (Mat.cols zp)

let test_mat_rref_pivots () =
  let a = Mat.of_int_rows [ [ 0; 1; 2 ]; [ 0; 2; 4 ]; [ 1; 0; 0 ] ] in
  let _, pivots = Mat.rref a in
  Alcotest.(check (list int)) "pivot columns" [ 0; 1 ] pivots

let test_mat_cat () =
  let a = Mat.of_int_rows [ [ 1 ]; [ 2 ] ] in
  let b = Mat.of_int_rows [ [ 3 ]; [ 4 ] ] in
  let h = Mat.hcat a b in
  Alcotest.(check int) "hcat cols" 2 (Mat.cols h);
  Alcotest.check rat "hcat entry" (Rat.of_int 3) (Mat.get h 0 1);
  let v = Mat.vcat a b in
  Alcotest.(check int) "vcat rows" 4 (Mat.rows v);
  Alcotest.check rat "vcat entry" (Rat.of_int 4) (Mat.get v 3 0)

(* ---------- properties ---------- *)

let small_int = QCheck.Gen.int_range (-6) 6

let gen_mat n =
  QCheck.Gen.(
    array_size (return (n * n)) small_int >|= fun cells ->
    List.init n (fun i -> List.init n (fun j -> cells.((i * n) + j))))

let arbitrary_mat n =
  QCheck.make ~print:(fun m ->
      String.concat "; "
        (List.map (fun r -> String.concat "," (List.map string_of_int r)) m))
    (gen_mat n)

let prop_det_transpose =
  QCheck.Test.make ~name:"det a = det (transpose a)" ~count:200
    (arbitrary_mat 3) (fun rows ->
      let a = Mat.of_int_rows rows in
      Rat.equal (Mat.det a) (Mat.det (Mat.transpose a)))

let prop_inverse_roundtrip =
  QCheck.Test.make ~name:"a * a^-1 = I when invertible" ~count:200
    (arbitrary_mat 3) (fun rows ->
      let a = Mat.of_int_rows rows in
      match Mat.inverse a with
      | None -> Rat.is_zero (Mat.det a)
      | Some inv -> Mat.equal (Mat.mul a inv) (Mat.identity 3))

let prop_null_space_kills =
  QCheck.Test.make ~name:"null-space vectors satisfy Av = 0" ~count:200
    (arbitrary_mat 3) (fun rows ->
      let a = Mat.of_int_rows rows in
      List.for_all
        (fun v -> Vec.is_zero (Mat.mul_vec a v))
        (Mat.null_space a))

let prop_rank_nullity =
  QCheck.Test.make ~name:"rank + nullity = cols" ~count:200 (arbitrary_mat 3)
    (fun rows ->
      let a = Mat.of_int_rows rows in
      Mat.rank a + List.length (Mat.null_space a) = Mat.cols a)

let prop_pinv_moore_penrose =
  QCheck.Test.make ~name:"A A+ A = A" ~count:100 (arbitrary_mat 3)
    (fun rows ->
      let a = Mat.of_int_rows rows in
      (* intermediate denominators can exceed native ints for adversarial
         matrices; real STT matrices are tiny, so out-of-range cases pass *)
      match Mat.pseudo_inverse a with
      | p -> Mat.equal (Mat.mul a (Mat.mul p a)) a
      | exception Rat.Overflow -> true)

let rat_pair = QCheck.(pair (int_range (-50) 50) (int_range (-50) 50))

let prop_rat_field =
  QCheck.Test.make ~name:"rational field laws" ~count:300
    QCheck.(triple rat_pair rat_pair rat_pair)
    (fun ((a, b), (c, d), (e, f)) ->
      let mk n d = Rat.make n (if d = 0 then 1 else d) in
      let x = mk a b and y = mk c d and z = mk e f in
      Rat.equal (Rat.add x (Rat.add y z)) (Rat.add (Rat.add x y) z)
      && Rat.equal (Rat.mul x (Rat.add y z))
           (Rat.add (Rat.mul x y) (Rat.mul x z))
      && Rat.equal (Rat.add x (Rat.neg x)) Rat.zero)

let suite =
  [ Alcotest.test_case "rat make/normalise" `Quick test_rat_make;
    Alcotest.test_case "rat arithmetic" `Quick test_rat_arith;
    Alcotest.test_case "rat compare" `Quick test_rat_compare;
    Alcotest.test_case "rat to_float" `Quick test_rat_to_float;
    Alcotest.test_case "vec basics" `Quick test_vec_basic;
    Alcotest.test_case "vec to_integer" `Quick test_vec_to_integer;
    Alcotest.test_case "mat basics" `Quick test_mat_basic;
    Alcotest.test_case "mat inverse" `Quick test_mat_inverse;
    Alcotest.test_case "mat null space" `Quick test_mat_null_space;
    Alcotest.test_case "mat solve" `Quick test_mat_solve;
    Alcotest.test_case "mat pseudo-inverse" `Quick test_mat_pseudo_inverse;
    Alcotest.test_case "mat rref pivots" `Quick test_mat_rref_pivots;
    Alcotest.test_case "mat hcat/vcat" `Quick test_mat_cat ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_det_transpose; prop_inverse_roundtrip; prop_null_space_kills;
        prop_rank_nullity; prop_pinv_moore_penrose; prop_rat_field ]
