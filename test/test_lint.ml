(* Rule-based static analysis: finding core, netlist rules, design rules.

   Every rule gets at least one positive (fires) and one negative (stays
   quiet) case; the suite ends with the acceptance gate — every supported
   design of the fast small workloads elaborates lint-clean — and an
   exit-code check on the CLI. *)

open Tensorlib
open Signal

let rules fs = List.map (fun (f : Lint.Finding.t) -> f.Lint.Finding.rule) fs
let has_rule r fs = List.mem r (rules fs)

let count_rule r fs =
  List.length (List.filter (fun (f : Lint.Finding.t) -> f.Lint.Finding.rule = r) fs)

let check outs =
  Lint.Netlist.check_circuit (Circuit.create ~name:"t" ~outputs:outs)

let check_src ?config ?roots ?declared_inputs outs =
  Lint.Netlist.check_source ?config
    (Lint.Netlist.source ?roots ?declared_inputs ~name:"t" outs)

(* ---------------- finding core ---------------- *)

let test_finding_defaults () =
  let f = Lint.Finding.v ~rule:"L009" ~target:"c" ~subject:"s" "m" in
  Alcotest.(check bool) "catalog severity" true
    (f.Lint.Finding.severity = Lint.Finding.Error);
  let f2 = Lint.Finding.v ~rule:"L003" ~target:"c" ~subject:"s" "m" in
  Alcotest.(check bool) "warning default" true
    (f2.Lint.Finding.severity = Lint.Finding.Warning);
  let f3 =
    Lint.Finding.v ~rule:"L003" ~severity:Lint.Finding.Info ~target:"c"
      ~subject:"s" "m"
  in
  Alcotest.(check bool) "override wins" true
    (f3.Lint.Finding.severity = Lint.Finding.Info);
  (* the catalog is complete and in ID order *)
  let ids = List.map (fun r -> r.Lint.Finding.id) Lint.Finding.catalog in
  Alcotest.(check bool) "sorted ids" true (List.sort compare ids = ids);
  Alcotest.(check bool) "l001 catalogued" true
    (Lint.Finding.rule_info "L001" <> None);
  Alcotest.(check bool) "unknown rule" true
    (Lint.Finding.rule_info "L999" = None)

let test_finding_suppress_count () =
  let f r = Lint.Finding.v ~rule:r ~target:"c" ~subject:"s" "m" in
  let fs = [ f "L009"; f "L003"; f "L012" ] in
  Alcotest.(check bool) "has errors" true (Lint.Finding.has_errors fs);
  let e, w, i = Lint.Finding.count fs in
  Alcotest.(check (list int)) "counts" [ 1; 1; 1 ] [ e; w; i ];
  let kept = Lint.Finding.suppress ~rules:[ "L009"; "L012" ] fs in
  Alcotest.(check (list string)) "suppressed" [ "L003" ] (rules kept);
  Alcotest.(check bool) "errors gone" false (Lint.Finding.has_errors kept)

let contains hay sub =
  let n = String.length sub and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = sub || go (i + 1)) in
  go 0

let test_finding_report_json () =
  let f r s = Lint.Finding.v ~rule:r ~target:"c" ~subject:s "say \"hi\"" in
  let fs = [ f "L012" "a"; f "L009" "b" ] in
  let report = Format.asprintf "%a" Lint.Finding.pp_report fs in
  Alcotest.(check bool) "summary line" true
    (contains report "1 error, 0 warnings, 1 info");
  let j = Lint.Finding.to_json fs in
  Alcotest.(check bool) "escaped quotes" true (contains j "say \\\"hi\\\"");
  Alcotest.(check bool) "error count" true (contains j "\"errors\":1");
  (* errors sort first *)
  let sorted = List.sort Lint.Finding.compare fs in
  Alcotest.(check string) "errors first" "L009"
    (List.hd sorted).Lint.Finding.rule

(* ---------------- netlist rules ---------------- *)

let test_l001_unassigned_wire () =
  let x = input "x" 8 in
  let dangling = wire 8 in
  let fs, c = check_src [ ("o", x +: dangling) ] in
  Alcotest.(check bool) "fires" true (has_rule "L001" fs);
  Alcotest.(check bool) "error severity" true (Lint.Finding.has_errors fs);
  Alcotest.(check bool) "no circuit" true (c = None);
  let ok = wire 8 in
  assign ok x;
  let fs, c = check_src [ ("o", x +: ok) ] in
  Alcotest.(check bool) "quiet" false (has_rule "L001" fs);
  Alcotest.(check bool) "circuit built" true (c <> None)

let test_l002_comb_cycle () =
  let x = input "x" 8 in
  let loop = wire 8 in
  assign loop (x +: loop);
  let fs, c = check_src [ ("o", loop) ] in
  Alcotest.(check bool) "fires" true (has_rule "L002" fs);
  Alcotest.(check bool) "no circuit" true (c = None);
  (* a register breaks the cycle *)
  let w = wire 8 in
  let q = reg w in
  assign w (q +: x);
  let fs, c = check_src [ ("o", q) ] in
  Alcotest.(check bool) "quiet" false (has_rule "L002" fs);
  Alcotest.(check bool) "circuit built" true (c <> None)

let test_l003_frozen_register () =
  let fs = check [ ("q", reg ~init:7 (const ~width:8 7)) ] in
  Alcotest.(check int) "fires" 1 (count_rule "L003" fs);
  (* init differs: the register changes value once, not frozen *)
  let fs = check [ ("q", reg ~init:0 (const ~width:8 7)) ] in
  Alcotest.(check bool) "quiet on init mismatch" false (has_rule "L003" fs);
  (* a clear to a different value can still change the register *)
  let clr = input "clr" 1 in
  let fs =
    check [ ("q", reg ~clear:clr ~clear_to:3 ~init:7 (const ~width:8 7)) ]
  in
  Alcotest.(check bool) "quiet when clear differs" false (has_rule "L003" fs)

let test_l004_mux_identical_branches () =
  let x = input "x" 8 and y = input "y" 8 in
  let fs = check [ ("o", mux2 (bit x 0) y y) ] in
  Alcotest.(check int) "fires" 1 (count_rule "L004" fs);
  (* identical through a wire alias *)
  let w = wire 8 in
  assign w y;
  let fs = check [ ("o", mux2 (bit x 0) w y) ] in
  Alcotest.(check int) "fires through alias" 1 (count_rule "L004" fs);
  let fs = check [ ("o", mux2 (bit x 0) x y) ] in
  Alcotest.(check bool) "quiet" false (has_rule "L004" fs)

let test_l005_mux_constant_select () =
  let x = input "x" 8 and y = input "y" 8 in
  let fs = check [ ("o", mux2 vdd x y) ] in
  Alcotest.(check int) "fires" 1 (count_rule "L005" fs);
  let fs = check [ ("o", mux2 (bit x 0) x y) ] in
  Alcotest.(check bool) "quiet" false (has_rule "L005" fs)

let test_l006_constant_enable () =
  let x = input "x" 8 in
  let fs =
    check [ ("a", reg ~enable:gnd x); ("b", reg ~enable:vdd x) ]
  in
  Alcotest.(check int) "both fire" 2 (count_rule "L006" fs);
  let fs = check [ ("q", reg ~enable:(bit x 0) x) ] in
  Alcotest.(check bool) "quiet" false (has_rule "L006" fs)

let test_l007_constant_clear () =
  let x = input "x" 8 in
  let fs = check [ ("q", reg ~clear:vdd ~clear_to:3 x) ] in
  Alcotest.(check int) "fires" 1 (count_rule "L007" fs);
  let fs = check [ ("q", reg ~clear:(bit x 0) ~clear_to:3 x) ] in
  Alcotest.(check bool) "quiet" false (has_rule "L007" fs)

let test_l008_writeless_ram () =
  let a = input "a" 2 in
  let r = ram ~size:4 ~width:8 ~init:(Array.make 4 0) () in
  let fs = check [ ("o", ram_read r a) ] in
  Alcotest.(check int) "fires" 1 (count_rule "L008" fs);
  (* a rom is read-only by construction *)
  let fs = check [ ("o", ram_read (rom ~width:8 [| 1; 2; 3; 4 |]) a) ] in
  Alcotest.(check bool) "rom quiet" false (has_rule "L008" fs);
  (* a written ram is fine *)
  let r = ram ~size:4 ~width:8 ~init:(Array.make 4 0) () in
  ram_write r ~we:(bit a 0) ~addr:a ~data:(uresize a 8);
  let fs = check [ ("o", ram_read r a) ] in
  Alcotest.(check bool) "written quiet" false (has_rule "L008" fs)

let test_l009_ram_address_out_of_range () =
  let x = input "x" 8 in
  let r = rom ~width:8 [| 1; 2; 3 |] in
  let fs = check [ ("o", ram_read r (const ~width:2 3)) ] in
  Alcotest.(check int) "read fires" 1 (count_rule "L009" fs);
  Alcotest.(check bool) "error severity" true (Lint.Finding.has_errors fs);
  (* constant write address *)
  let rw = ram ~size:3 ~width:8 ~init:(Array.make 3 0) () in
  ram_write rw ~we:(bit x 0) ~addr:(const ~width:2 3) ~data:x;
  let fs = check [ ("o", ram_read rw (select x ~hi:1 ~lo:0)) ] in
  Alcotest.(check int) "write fires" 1 (count_rule "L009" fs);
  let fs = check [ ("o", ram_read r (const ~width:2 2)) ] in
  Alcotest.(check bool) "in range quiet" false (has_rule "L009" fs)

let test_l010_l011_unreachable () =
  let x = input "x" 8 and y = input "y" 8 in
  let stray_reg = reg (x *: y) -- "orphan_acc" in
  let fs, _ = check_src ~roots:[ stray_reg ] [ ("o", x +: y) ] in
  Alcotest.(check int) "cone reported" 1 (count_rule "L010" fs);
  Alcotest.(check int) "register reported" 1 (count_rule "L011" fs);
  (* a root inside the output cone is quiet *)
  let shared = x +: y in
  let fs, _ = check_src ~roots:[ shared ] [ ("o", shared) ] in
  Alcotest.(check bool) "quiet" false
    (has_rule "L010" fs || has_rule "L011" fs)

let test_l012_fanout_hotspot () =
  let x = input "x" 8 and y = input "y" 8 in
  let outs =
    List.init 4 (fun i -> (Printf.sprintf "o%d" i, x +: uresize (bit y i) 8))
  in
  let config = { Lint.Netlist.default_config with fanout_threshold = 2 } in
  let fs, _ = check_src ~config outs in
  Alcotest.(check bool) "fires above threshold" true (has_rule "L012" fs);
  let fs, _ = check_src outs in
  Alcotest.(check bool) "default threshold quiet" false (has_rule "L012" fs)

let test_l013_unused_input () =
  let x = input "x" 8 in
  let fs, _ =
    check_src ~declared_inputs:[ ("x", 8); ("spare", 4) ] [ ("o", x) ]
  in
  Alcotest.(check int) "unused fires" 1 (count_rule "L013" fs);
  let fs, _ = check_src ~declared_inputs:[ ("x", 16) ] [ ("o", x) ] in
  Alcotest.(check int) "width mismatch fires" 1 (count_rule "L013" fs);
  let fs, _ = check_src ~declared_inputs:[ ("x", 8) ] [ ("o", x) ] in
  Alcotest.(check bool) "quiet" false (has_rule "L013" fs)

(* ---------------- design rules ---------------- *)

let gemm = Workloads.gemm ~m:4 ~n:4 ~k:4
let identity = [ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ]

let test_l100_malformed () =
  let fs, d =
    Lint.Design.check_matrix gemm ~selected:[| 0; 0; 1 |] ~matrix:identity
  in
  Alcotest.(check bool) "duplicate selection" true (has_rule "L100" fs);
  Alcotest.(check bool) "no design" true (d = None);
  let fs, _ =
    Lint.Design.check_matrix gemm ~selected:[| 0; 1; 2 |]
      ~matrix:[ [ 1; 0 ]; [ 0; 1 ] ]
  in
  Alcotest.(check bool) "shape mismatch" true (has_rule "L100" fs);
  let fs, _ =
    Lint.Design.check_matrix gemm ~selected:[| 0; 1; 7 |] ~matrix:identity
  in
  Alcotest.(check bool) "out of range" true (has_rule "L100" fs);
  let fs, d =
    Lint.Design.check_matrix gemm ~selected:[| 0; 1; 2 |] ~matrix:identity
  in
  Alcotest.(check bool) "quiet" false (has_rule "L100" fs);
  Alcotest.(check bool) "design built" true (d <> None)

let test_l101_singular () =
  let fs, d =
    Lint.Design.check_matrix gemm ~selected:[| 0; 1; 2 |]
      ~matrix:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 1; 0 ] ]
  in
  Alcotest.(check bool) "fires" true (has_rule "L101" fs);
  Alcotest.(check bool) "error severity" true (Lint.Finding.has_errors fs);
  Alcotest.(check bool) "no design" true (d = None);
  let fs, _ =
    Lint.Design.check_matrix gemm ~selected:[| 0; 1; 2 |] ~matrix:identity
  in
  Alcotest.(check bool) "quiet" false (has_rule "L101" fs)

let identity_design =
  Design.analyze (Transform.v gemm ~selected:[| 0; 1; 2 |] ~matrix:identity)

let test_l102_pe_bounds () =
  let fs = Lint.Design.check_design ~rows:2 ~cols:2 identity_design in
  Alcotest.(check bool) "fires on 2x2" true (has_rule "L102" fs);
  let fs = Lint.Design.check_design ~rows:16 ~cols:16 identity_design in
  Alcotest.(check bool) "quiet on 16x16" false (has_rule "L102" fs)

(* O[i] += A[i,j] * B[j,k]: the output ignores j and k, so a transform
   sending both to pure space makes every PE hit the same element in the
   same cycle (output 2-D broadcast). *)
let reduction_stmt =
  let iters = [ Iter.v "i" 3; Iter.v "j" 3; Iter.v "k" 3 ] in
  Stmt.v "redout" ~iters
    ~output:(Access.of_terms "O" ~depth:3 [ [ 0 ] ])
    ~inputs:
      [ Access.of_terms "A" ~depth:3 [ [ 0 ]; [ 1 ] ];
        Access.of_terms "B" ~depth:3 [ [ 1 ]; [ 2 ] ] ]

let broadcast_out_design =
  Design.analyze
    (Transform.v reduction_stmt ~selected:[| 0; 1; 2 |]
       ~matrix:[ [ 0; 1; 0 ]; [ 0; 0; 1 ]; [ 1; 0; 0 ] ])

let test_l103_schedule_causality () =
  let fs = Lint.Design.check_design broadcast_out_design in
  Alcotest.(check bool) "fires" true (has_rule "L103" fs);
  Alcotest.(check bool) "error severity" true (Lint.Finding.has_errors fs);
  let fs = Lint.Design.check_design identity_design in
  Alcotest.(check bool) "quiet" false (has_rule "L103" fs)

let test_l104_reuse_negative_dt () =
  (* C ignores k; this transform maps e_k to (1, 0, -1): the raw reuse
     direction runs backwards in time *)
  let d =
    Design.analyze
      (Transform.v gemm ~selected:[| 0; 1; 2 |]
         ~matrix:[ [ 1; 0; 1 ]; [ 0; 1; 0 ]; [ 0; 0; -1 ] ])
  in
  let fs = Lint.Design.check_design d in
  Alcotest.(check bool) "fires" true (has_rule "L104" fs);
  let fs = Lint.Design.check_design identity_design in
  Alcotest.(check bool) "quiet" false (has_rule "L104" fs)

let test_l105_netlist_unsupported () =
  Alcotest.(check bool) "design is unsupported" false
    (Design.netlist_supported broadcast_out_design);
  let fs = Lint.Design.check_design broadcast_out_design in
  Alcotest.(check bool) "fires" true (has_rule "L105" fs);
  let fs = Lint.Design.check_design identity_design in
  Alcotest.(check bool) "quiet" false (has_rule "L105" fs)

let test_l106_generation_rejected () =
  (* a 2-iterator selection builds a 1-D array; the generator wants
     cols = 1 and rejects a 2-D request *)
  let d =
    Design.analyze
      (Transform.v gemm ~selected:[| 0; 1 |]
         ~matrix:[ [ 1; 0 ]; [ 0; 1 ] ])
  in
  Alcotest.(check bool) "classified as supported" true
    (Design.netlist_supported d);
  let env = Exec.alloc_inputs gemm in
  (match Accel.generate ~rows:4 ~cols:4 d env with
   | exception Accel.Unsupported msg ->
     let f =
       Lint.Finding.v ~rule:"L106" ~target:d.Design.name ~subject:"generator"
         msg
     in
     Alcotest.(check bool) "warning severity" true
       (f.Lint.Finding.severity = Lint.Finding.Warning)
   | _ -> Alcotest.fail "expected Accel.Unsupported");
  (* a full 3-iterator design generates fine *)
  let acc = Accel.generate ~rows:4 ~cols:4 identity_design env in
  Alcotest.(check bool) "generated" true (acc.Accel.total_cycles > 0)

(* ---------------- acceptance gate ---------------- *)

(* Every supported design of the fast small workloads must elaborate
   lint-clean: zero error-severity findings from both front ends.  The
   slower conv2d-small / depthwise-small sweeps run under `make lint`. *)
let test_small_workloads_lint_clean () =
  List.iter
    (fun (wname, stmt) ->
      let env = Exec.alloc_inputs stmt in
      List.iter
        (fun (_, d) ->
          if Design.netlist_supported d then begin
            let dfs = Lint.Design.check_design ~rows:16 ~cols:16 d in
            (match Lint.Finding.errors dfs with
             | [] -> ()
             | errs ->
               Alcotest.failf "%s %s design lint errors:@.%a" wname
                 d.Design.name Lint.Finding.pp_report errs);
            match Accel.generate ~rows:16 ~cols:16 d env with
            | exception Accel.Unsupported _ -> ()
            | acc -> (
              let nfs = Lint.Netlist.check_circuit acc.Accel.circuit in
              match Lint.Finding.errors nfs with
              | [] -> ()
              | errs ->
                Alcotest.failf "%s %s netlist lint errors:@.%a" wname
                  d.Design.name Lint.Finding.pp_report errs)
          end)
        (Search.all_designs stmt))
    [ ("gemm-small", Workloads.gemm ~m:4 ~n:4 ~k:4);
      ("mttkrp-small", Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4) ]

let cli path args =
  Sys.command (Filename.quote_command path args ^ " > /dev/null 2>&1")

let test_cli_exit_codes () =
  let exe = "../bin/tensorlib_cli.exe" in
  if Sys.file_exists exe then begin
    Alcotest.(check int) "clean workload exits 0" 0
      (cli exe [ "lint"; "-w"; "gemm-small" ]);
    (* a singular matrix is an L101 error: exit 1 *)
    Alcotest.(check int) "error exits 1" 1
      (cli exe
         [ "lint"; "-w"; "gemm-small"; "--select"; "m,n,k"; "--matrix";
           "1,0,0;0,1,0;1,1,0" ])
  end

(* Fast deterministic slice of the fuzz harness: the lint differential
   oracle (Rewrite never introduces findings) over 200 random netlists. *)
let test_fuzz_oracle_smoke () =
  let exe = "../bin/fuzz.exe" in
  if Sys.file_exists exe then
    Alcotest.(check int) "no oracle violations" 0 (cli exe [ "200"; "7" ])

let suite =
  [ Alcotest.test_case "finding severity defaults" `Quick test_finding_defaults;
    Alcotest.test_case "finding suppress + count" `Quick
      test_finding_suppress_count;
    Alcotest.test_case "finding report + json" `Quick test_finding_report_json;
    Alcotest.test_case "L001 unassigned wire" `Quick test_l001_unassigned_wire;
    Alcotest.test_case "L002 combinational cycle" `Quick test_l002_comb_cycle;
    Alcotest.test_case "L003 frozen register" `Quick test_l003_frozen_register;
    Alcotest.test_case "L004 mux identical branches" `Quick
      test_l004_mux_identical_branches;
    Alcotest.test_case "L005 mux constant select" `Quick
      test_l005_mux_constant_select;
    Alcotest.test_case "L006 constant enable" `Quick test_l006_constant_enable;
    Alcotest.test_case "L007 constant clear" `Quick test_l007_constant_clear;
    Alcotest.test_case "L008 writeless ram" `Quick test_l008_writeless_ram;
    Alcotest.test_case "L009 ram address range" `Quick
      test_l009_ram_address_out_of_range;
    Alcotest.test_case "L010/L011 unreachable" `Quick
      test_l010_l011_unreachable;
    Alcotest.test_case "L012 fanout hotspot" `Quick test_l012_fanout_hotspot;
    Alcotest.test_case "L013 unused input" `Quick test_l013_unused_input;
    Alcotest.test_case "L100 malformed stt" `Quick test_l100_malformed;
    Alcotest.test_case "L101 singular stt" `Quick test_l101_singular;
    Alcotest.test_case "L102 pe bounds" `Quick test_l102_pe_bounds;
    Alcotest.test_case "L103 schedule causality" `Quick
      test_l103_schedule_causality;
    Alcotest.test_case "L104 reuse negative dt" `Quick
      test_l104_reuse_negative_dt;
    Alcotest.test_case "L105 netlist unsupported" `Quick
      test_l105_netlist_unsupported;
    Alcotest.test_case "L106 generation rejected" `Quick
      test_l106_generation_rejected;
    Alcotest.test_case "small workloads lint clean" `Slow
      test_small_workloads_lint_clean;
    Alcotest.test_case "cli exit codes" `Slow test_cli_exit_codes;
    Alcotest.test_case "fuzz oracle smoke" `Slow test_fuzz_oracle_smoke ]
