let () =
  Alcotest.run "tensorlib"
    [ ("linalg", Test_linalg.suite);
      ("ir", Test_ir.suite);
      ("stt", Test_stt.suite);
      ("hw", Test_hw.suite);
      ("sim-backends", Test_sim_backends.suite);
      ("templates", Test_templates.suite);
      ("models", Test_models.suite);
      ("features", Test_features.suite);
      ("workloads-ext", Test_workloads_ext.suite);
      ("metrics", Test_metrics.suite);
      ("parse", Test_parse.suite);
      ("dse-fast", Test_dse_fast.suite);
      ("misc", Test_misc.suite);
      ("lint", Test_lint.suite);
      ("fault", Test_fault.suite);
      ("obs", Test_obs.suite);
      ("coverage", Test_coverage.suite);
      ("absint", Test_absint.suite);
      ("compile", Test_compile.suite);
      ("store", Test_store.suite);
      ("resil", Test_resil.suite) ]
