(* Reuse-metrics analysis: exact traffic and reuse factors. *)

open Tensorlib

let gemm = Workloads.gemm ~m:256 ~n:256 ~k:256

let metrics_of name =
  Metrics.of_design (Search.find_design_exn gemm name)

let tensor m name =
  List.find (fun tm -> tm.Metrics.tensor = name) m.Metrics.tensors

let test_output_stationary_reuse () =
  let m = metrics_of "MNK-SST" in
  (* the stationary output is fetched once per element per k-tile; with the
     full k mapped to time, that is exactly once per element *)
  let c = tensor m "C" in
  Alcotest.(check int) "C footprint" (256 * 256) c.Metrics.footprint;
  Alcotest.(check (float 1.)) "C fetches = footprint"
    (float_of_int c.Metrics.footprint)
    c.Metrics.fetches;
  (* systolic A is fetched once per chain: 256^3 / 16 chainlength *)
  let a = tensor m "A" in
  Alcotest.(check (float 0.01)) "A reuse = chain length 16" 16.
    a.Metrics.reuse_factor

let test_unicast_reuse_is_one () =
  let bg = Workloads.batched_gemv ~m:64 ~n:256 ~k:256 in
  let m = Metrics.of_design (Search.find_design_exn bg "MNK-UTS") in
  let a = tensor m "A" in
  Alcotest.(check (float 1e-6)) "unicast reuse 1.0" 1. a.Metrics.reuse_factor;
  Alcotest.(check bool) "low intensity" true
    (m.Metrics.arithmetic_intensity < 2.)

let test_traffic_lower_bound () =
  (* traffic can never be below the compulsory footprint of all tensors *)
  List.iter
    (fun name ->
      let m = metrics_of name in
      let compulsory =
        List.fold_left
          (fun acc tm -> acc + tm.Metrics.footprint)
          0 m.Metrics.tensors
      in
      Alcotest.(check bool)
        (name ^ " traffic >= compulsory")
        true
        (m.Metrics.total_traffic_words >= float_of_int compulsory -. 1.))
    [ "MNK-SST"; "MNK-STS"; "MNK-MTM"; "MNK-MMT" ]

let test_traffic_upper_bound () =
  (* and never above one fetch per access *)
  List.iter
    (fun name ->
      let m = metrics_of name in
      List.iter
        (fun tm ->
          Alcotest.(check bool)
            (name ^ "/" ^ tm.Metrics.tensor ^ " fetches <= accesses")
            true
            (tm.Metrics.fetches <= float_of_int tm.Metrics.accesses +. 1.))
        m.Metrics.tensors)
    [ "MNK-SST"; "MNK-MTM"; "MNK-SSM" ]

let test_metrics_render () =
  let m = metrics_of "MNK-SST" in
  let s = Format.asprintf "%a" Metrics.pp m in
  Alcotest.(check bool) "mentions intensity" true
    (let sub = "MACs/word" in
     let n = String.length sub and h = String.length s in
     let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
     go 0)

let prop_intensity_consistent =
  QCheck.Test.make ~name:"intensity = macs / traffic" ~count:10
    QCheck.(int_range 0 9)
    (fun i ->
      let all = Search.all_designs ~selection:[| 0; 1; 2 |] gemm in
      let _, d = List.nth all (i mod List.length all) in
      let m = Metrics.of_design d in
      let expect =
        float_of_int m.Metrics.macs /. m.Metrics.total_traffic_words
      in
      abs_float (m.Metrics.arithmetic_intensity -. expect) < 1e-6)

let suite =
  [ Alcotest.test_case "output-stationary reuse" `Quick
      test_output_stationary_reuse;
    Alcotest.test_case "unicast reuse is 1" `Quick test_unicast_reuse_is_one;
    Alcotest.test_case "traffic lower bound" `Quick test_traffic_lower_bound;
    Alcotest.test_case "traffic upper bound" `Quick test_traffic_upper_bound;
    Alcotest.test_case "metrics render" `Quick test_metrics_render ]
  @ [ QCheck_alcotest.to_alcotest prop_intensity_consistent ]
