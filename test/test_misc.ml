(* Corner cases and smaller APIs: exploration, dense tensors, rationals
   under stress, Verilog numeric forms, schedule event ordering. *)

open Tensorlib

(* ---------------- joint exploration ---------------- *)

let test_explore_gemm () =
  let gemm = Workloads.gemm ~m:64 ~n:64 ~k:64 in
  let evaluated = Explore.explore ~limit:8 gemm in
  Alcotest.(check bool) "several designs" true (List.length evaluated >= 4);
  let fastest = Explore.best_performance evaluated in
  let greenest = Explore.best_efficiency evaluated in
  Alcotest.(check bool) "fastest has min cycles" true
    (List.for_all
       (fun e -> fastest.Explore.perf.Perf.cycles <= e.Explore.perf.Perf.cycles)
       evaluated);
  Alcotest.(check bool) "greenest has max gops/W" true
    (List.for_all
       (fun e -> greenest.Explore.gops_per_watt >= e.Explore.gops_per_watt)
       evaluated);
  (* frontier members are mutually non-dominated *)
  let front = Explore.pareto_perf_power evaluated in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b then
            Alcotest.(check bool) "non-dominated" false
              (b.Explore.perf.Perf.cycles <= a.Explore.perf.Perf.cycles
               && b.Explore.asic.Asic.power_mw <= a.Explore.asic.Asic.power_mw
               && (b.Explore.perf.Perf.cycles < a.Explore.perf.Perf.cycles
                   || b.Explore.asic.Asic.power_mw < a.Explore.asic.Asic.power_mw)))
        front)
    front

let test_explore_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Explore: empty evaluation list")
    (fun () -> ignore (Explore.best_performance []))

(* ---------------- dense tensor corners ---------------- *)

let test_dense_rank1 () =
  let t = Dense.init [| 5 |] (fun i -> i.(0) * i.(0)) in
  Alcotest.(check int) "get" 16 (Dense.get t [| 4 |]);
  Alcotest.(check (array int)) "strides" [| 1 |] (Dense.strides t)

let test_dense_validation () =
  Alcotest.check_raises "empty shape"
    (Invalid_argument "Dense.create: empty shape") (fun () ->
      ignore (Dense.create [||]));
  Alcotest.check_raises "zero extent"
    (Invalid_argument "Dense.create: non-positive extent") (fun () ->
      ignore (Dense.create [| 2; 0 |]))

let test_dense_fill_and_pp () =
  let t = Dense.create [| 2; 2 |] in
  Dense.fill t 7;
  Alcotest.(check int) "filled" 7 (Dense.get t [| 1; 1 |]);
  let s = Format.asprintf "%a" Dense.pp t in
  Alcotest.(check bool) "pp shows shape" true
    (String.length s > 0 && String.contains s 'x')

(* ---------------- rationals under stress ---------------- *)

let test_rat_overflow_detected () =
  let big = Rat.make max_int 1 in
  (try
     ignore (Rat.mul big big);
     Alcotest.fail "expected overflow"
   with Rat.Overflow -> ())

let test_rat_extremes () =
  Alcotest.(check int) "compare extremes" 1
    (Rat.compare (Rat.make 1 3) (Rat.make 1 4));
  Alcotest.(check string) "to_string" "-3/7" (Rat.to_string (Rat.make 3 (-7)))

(* ---------------- verilog numeric / structural forms ---------------- *)

let has hay sub =
  let n = String.length sub and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = sub || go (i + 1)) in
  go 0

let test_verilog_negative_constant () =
  let open Signal in
  let c = const ~width:8 (-3) in
  let v =
    Verilog.to_string (Circuit.create ~name:"neg" ~outputs:[ ("o", c) ])
  in
  (* -3 masked to 8 bits = 253 *)
  Alcotest.(check bool) "two's complement literal" true (has v "8'd253")

let test_verilog_signed_ops () =
  let open Signal in
  let a = input "a" 8 and b = input "b" 8 in
  let v =
    Verilog.to_string
      (Circuit.create ~name:"signed_ops"
         ~outputs:[ ("lt", slt a b); ("sra", shift_right_a a 3) ])
  in
  Alcotest.(check bool) "signed compare" true (has v "$signed(a) < $signed(b)");
  Alcotest.(check bool) "arithmetic shift" true (has v ">>> 3")

let test_verilog_keyword_collision () =
  let open Signal in
  let x = input "x" 4 in
  let named = (x +: x) -- "output" in
  (* "output" is a Verilog keyword: the emitter must rename it *)
  let v =
    Verilog.to_string (Circuit.create ~name:"kw" ~outputs:[ ("o", named) ])
  in
  Alcotest.(check bool) "keyword avoided" true (has v "output_1")

let test_verilog_ram_write_block () =
  let open Signal in
  let we = input "we" 1 and addr = input "addr" 2 and d = input "d" 8 in
  let r = ram ~name:"buf" ~size:4 ~width:8 ~init:(Array.make 4 0) () in
  ram_write r ~we ~addr ~data:d;
  let v =
    Verilog.to_string
      (Circuit.create ~name:"ramw" ~outputs:[ ("q", ram_read r addr) ])
  in
  Alcotest.(check bool) "write in always block" true
    (has v "if (we) buf[addr] <= d;")

(* ---------------- schedule events ---------------- *)

let test_schedule_events_sorted () =
  let stmt = Workloads.gemm ~m:3 ~n:3 ~k:3 in
  let d = Search.find_design_exn stmt "MNK-SST" in
  let sched = Schedule.build d ~rows:4 ~cols:4 in
  let events = Schedule.events sched in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Schedule.cycle <= b.Schedule.cycle && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending cycles" true (sorted events);
  Alcotest.(check int) "27 events" 27 (List.length events);
  (* every event's tensor indices are in range *)
  List.iter
    (fun ev ->
      List.iter
        (fun access ->
          let idx = Schedule.tensor_index sched access ev in
          let shape = Access.shape access stmt.Stmt.iters in
          Array.iteri
            (fun i v ->
              Alcotest.(check bool) "index in range" true
                (v >= 0 && v < shape.(i)))
            idx)
        (Stmt.tensors stmt))
    events

(* ---------------- topology coverage ---------------- *)

let test_topology_all_classes () =
  (* every dataflow class renders in a topology report without exceptions *)
  let stmts =
    [ Workloads.gemm ~m:8 ~n:8 ~k:8;
      Workloads.batched_gemv ~m:4 ~n:4 ~k:4;
      Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3;
      Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3 ]
  in
  List.iter
    (fun stmt ->
      List.iter
        (fun (_, d) ->
          let topo = Topology.describe d in
          Alcotest.(check bool) "tensors covered" true
            (List.length topo.Topology.tensors
             = List.length d.Design.tensors);
          ignore (Format.asprintf "%a" Topology.pp topo))
        (List.filteri (fun i _ -> i < 10) (Search.all_designs stmt)))
    stmts

(* ---------------- facade sanity ---------------- *)

let test_facade () =
  Alcotest.(check bool) "version" true (String.length Tensorlib.version > 0);
  let stmt = Workloads.gemm ~m:2 ~n:2 ~k:2 in
  let d = Tensorlib.analyze stmt ~select:[ "m"; "n"; "k" ]
      ~matrix:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 1; 1 ] ]
  in
  Alcotest.(check string) "facade analyze" "MNK-SST" d.Design.name

let suite =
  [ Alcotest.test_case "explore gemm" `Quick test_explore_gemm;
    Alcotest.test_case "explore empty" `Quick test_explore_empty_raises;
    Alcotest.test_case "dense rank-1" `Quick test_dense_rank1;
    Alcotest.test_case "dense validation" `Quick test_dense_validation;
    Alcotest.test_case "dense fill/pp" `Quick test_dense_fill_and_pp;
    Alcotest.test_case "rat overflow" `Quick test_rat_overflow_detected;
    Alcotest.test_case "rat extremes" `Quick test_rat_extremes;
    Alcotest.test_case "verilog negative const" `Quick
      test_verilog_negative_constant;
    Alcotest.test_case "verilog signed ops" `Quick test_verilog_signed_ops;
    Alcotest.test_case "verilog keyword clash" `Quick
      test_verilog_keyword_collision;
    Alcotest.test_case "verilog ram write" `Quick test_verilog_ram_write_block;
    Alcotest.test_case "schedule events" `Quick test_schedule_events_sorted;
    Alcotest.test_case "topology coverage" `Quick test_topology_all_classes;
    Alcotest.test_case "facade" `Quick test_facade ]

(* ---------------- netlist-based costing + scale ---------------- *)

let test_netlist_costing () =
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let d = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:4 ~cols:4 d env in
  let r = Asic.evaluate_netlist acc.Accel.circuit in
  Alcotest.(check bool) "positive power" true (r.Asic.power_mw > 0.);
  Alcotest.(check bool) "positive area" true (r.Asic.area > 0.);
  (* same coefficients: netlist compute cost of a 4x4 must be ~1/16 of the
     16x16 analytic model's compute entry (16 vs 256 multipliers) *)
  let analytic = Asic.evaluate ~rows:4 ~cols:4 d in
  let compute rep = List.assoc "compute" rep.Asic.breakdown in
  Alcotest.(check bool) "compute costs within 2x" true
    (compute r < 2. *. compute analytic && compute analytic < 2. *. compute r)

let test_full_scale_array () =
  (* a full 16x16 array netlist, simulated end to end *)
  let stmt = Workloads.gemm ~m:16 ~n:16 ~k:8 in
  let d = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:16 ~cols:16 d env in
  let st = Circuit.stats acc.Accel.circuit in
  Alcotest.(check int) "256 multipliers" 256 st.Circuit.multipliers;
  Alcotest.(check bool) "16x16 hardware matches golden" true
    (Dense.equal (Exec.run stmt env) (Accel.execute acc))

let suite =
  suite
  @ [ Alcotest.test_case "netlist costing" `Quick test_netlist_costing;
      Alcotest.test_case "full 16x16 array" `Quick test_full_scale_array ]

let test_narrow_datapath () =
  (* 8-bit data / 24-bit accumulators still compute exactly (inputs are
     small by construction) *)
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let d = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:4 ~cols:4 ~data_width:8 ~acc_width:24 d env in
  Alcotest.(check bool) "8-bit datapath matches golden" true
    (Dense.equal (Exec.run stmt env) (Accel.execute acc))

let test_bank_port_constraint () =
  let bg = Workloads.batched_gemv ~m:8 ~n:8 ~k:8 in
  let all = Enumerate.design_space bg in
  let constrained = Enumerate.design_space ~max_bank_ports:64 bg in
  Alcotest.(check bool) "constraint prunes" true
    (List.length constrained < List.length all);
  (* batched-GEMV tensors A are unicast: need 256 ports on 16x16 *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "within port budget" true
        ((Inventory.of_design p.Enumerate.design).Inventory.bank_ports <= 64))
    constrained

let suite =
  suite
  @ [ Alcotest.test_case "narrow datapath" `Quick test_narrow_datapath;
      Alcotest.test_case "bank-port constraint" `Quick
        test_bank_port_constraint ]
