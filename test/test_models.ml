(* Performance model (Fig. 5), cost models (Fig. 6 / Table III), DSE and
   baseline restrictions. *)

open Tensorlib

let gemm = Workloads.gemm ~m:256 ~n:256 ~k:256

let eval name =
  match Perf.evaluate_name gemm name with
  | Some r -> r
  | None -> Alcotest.failf "%s not realisable" name

let test_perf_peak_bound () =
  List.iter
    (fun name ->
      let r = eval name in
      Alcotest.(check bool)
        (name ^ " normalized <= 1") true
        (r.Perf.normalized_perf <= 1.0 +. 1e-9);
      Alcotest.(check bool)
        (name ^ " util <= 1") true (r.Perf.utilization <= 1.0 +. 1e-9);
      Alcotest.(check bool)
        (name ^ " bw factor >= 1") true (r.Perf.bw_stall_factor >= 1.0 -. 1e-9);
      Alcotest.(check bool)
        (name ^ " pipelined >= serialized") true
        (r.Perf.pipelined_perf >= r.Perf.normalized_perf -. 1e-9))
    [ "MNK-SST"; "MNK-STS"; "MNK-MTM"; "MNK-MMT" ]

let test_perf_fig5_gemm_ordering () =
  (* §VI-A: multicast (MTM) beats systolic (STS) on cycles *)
  let mtm = eval "MNK-MTM" and sts = eval "MNK-STS" in
  Alcotest.(check bool) "MTM > STS" true
    (mtm.Perf.normalized_perf > sts.Perf.normalized_perf);
  Alcotest.(check bool) "STS still close to peak" true
    (sts.Perf.normalized_perf > 0.8)

let test_perf_fig5_unicast_bandwidth () =
  (* MTTKRP unicast is bandwidth-bound and far below reuse dataflows *)
  let mt = Workloads.mttkrp ~i:128 ~j:64 ~k:64 ~l:64 in
  let uni = Option.get (Perf.evaluate_name mt "IKL-UBBB") in
  let reuse = Option.get (Perf.evaluate_name mt "IJK-MMBT") in
  Alcotest.(check bool) "unicast bw-stalled" true
    (uni.Perf.bw_stall_factor > 2.0);
  Alcotest.(check bool) "reuse beats unicast 3x" true
    (reuse.Perf.normalized_perf > 3.0 *. uni.Perf.normalized_perf)

let test_perf_fig5_conv_small_bounds () =
  (* small x=y=7 bounds (ResNet layer5) hurt XY-mapped dataflows *)
  let l2 = Option.get (Perf.evaluate_name Workloads.resnet_layer2 "XYP-MMT") in
  let l5 = Option.get (Perf.evaluate_name Workloads.resnet_layer5 "XYP-MMT") in
  Alcotest.(check bool) "layer5 worse than layer2" true
    (l5.Perf.normalized_perf < l2.Perf.normalized_perf);
  (* KCX (GEMM-like) beats XYP on layer2, the paper's recommendation *)
  let kcx = Option.get (Perf.evaluate_name Workloads.resnet_layer2 "KCX-SST") in
  Alcotest.(check bool) "KCX beats XYP" true
    (kcx.Perf.normalized_perf > l2.Perf.normalized_perf)

let test_perf_batched_gemv_unicast_only () =
  (* tensor A of batched GEMV can only be unicast (touched once) *)
  let bg = Workloads.batched_gemv ~m:64 ~n:64 ~k:64 in
  List.iter
    (fun sel ->
      List.iter
        (fun m ->
          let t = Transform.v bg ~selected:sel ~matrix:m in
          let d = Design.analyze t in
          Alcotest.(check bool) "A unicast" true
            ((Design.find_tensor d "A").Design.dataflow = Dataflow.Unicast))
        (List.filteri (fun i _ -> i < 50) (Search.candidate_matrices ~n:3)))
    [ [| 0; 1; 2 |] ]

let test_perf_tile_fits () =
  let r = eval "MNK-SST" in
  Alcotest.(check bool) "tile within extents" true
    (Array.for_all (fun t -> t >= 1 && t <= 256) r.Perf.tile);
  Alcotest.(check bool) "cycles positive" true (r.Perf.cycles > 0.)

let test_asic_fig6_spread () =
  let all = Search.all_designs ~selection:[| 0; 1; 2 |] gemm in
  let reports = List.map (fun (_, d) -> Asic.evaluate d) all in
  let powers = List.map (fun r -> r.Asic.power_mw) reports in
  let areas = List.map (fun r -> r.Asic.area) reports in
  let mn = List.fold_left min (List.hd powers) powers in
  let mx = List.fold_left max (List.hd powers) powers in
  Alcotest.(check bool) "power spread > 1.4x" true (mx /. mn > 1.4);
  Alcotest.(check bool) "power in 30..70 mW" true (mn > 30. && mx < 70.);
  let amn = List.fold_left min (List.hd areas) areas in
  let amx = List.fold_left max (List.hd areas) areas in
  Alcotest.(check bool) "area spread modest (<1.25x)" true
    (amx /. amn < 1.25);
  (* the paper: double-multicast-input designs are the energy-hungriest *)
  let top =
    List.sort (fun a b -> compare b.Asic.power_mw a.Asic.power_mw) reports
  in
  (match top with
   | hot :: _ ->
     Alcotest.(check bool) "hottest is MM*" true
       (String.length hot.Asic.design_name >= 6
        && String.sub hot.Asic.design_name 4 2 = "MM")
   | [] -> Alcotest.fail "no designs")

let test_asic_breakdown_sums () =
  let d = Search.find_design_exn gemm "MNK-SST" in
  let r = Asic.evaluate d in
  let total = List.fold_left (fun a (_, v) -> a +. v) 0. r.Asic.breakdown in
  Alcotest.(check (float 1e-6)) "breakdown sums to power" r.Asic.power_mw
    total

let test_inventory_counts () =
  let d = Search.find_design_exn gemm "MNK-SST" in
  let inv = Inventory.of_design ~rows:16 ~cols:16 d in
  Alcotest.(check int) "one multiplier per PE" 256 inv.Inventory.multipliers;
  Alcotest.(check int) "mac adders for stationary out" 256
    inv.Inventory.mac_adders;
  Alcotest.(check int) "no tree" 0 inv.Inventory.tree_adders;
  Alcotest.(check bool) "dw regs for 2 systolic tensors" true
    (inv.Inventory.dw_reg_bits >= 2 * 256 * 16);
  let dtree = Search.find_design_exn gemm "MNK-MTM" in
  let invt = Inventory.of_design ~rows:16 ~cols:16 dtree in
  Alcotest.(check int) "tree adders 16 lines x 15" 240
    invt.Inventory.tree_adders

let test_fpga_table3 () =
  let mm = Workloads.gemm ~m:1024 ~n:1024 ~k:1024 in
  let d = Search.find_design_exn mm "MNK-STS" in
  let perf =
    Perf.evaluate
      ~config:{ Perf.default_config with rows = 10; cols = 16;
                bandwidth_gbps = 64.; elem_bytes = 4 }
      d
  in
  let r =
    Fpga.evaluate ~device:Fpga.vu9p ~rows:10 ~cols:16 ~vec:8
      ~datatype:Fpga.Fp32 ~efficiency:perf.Perf.pipelined_perf ~workload:"MM"
      d
  in
  (* paper Table III: 68% LUT, 75% DSP, 51% BRAM, 263 MHz, 673 Gop/s *)
  Alcotest.(check bool) "DSP 75%" true (abs_float (r.Fpga.dsp_pct -. 75.) < 2.);
  Alcotest.(check bool) "MHz ~263" true (abs_float (r.Fpga.mhz -. 263.) < 8.);
  Alcotest.(check bool) "Gop/s ~673" true (abs_float (r.Fpga.gops -. 673.) < 25.);
  Alcotest.(check bool) "BRAM ~51%" true (abs_float (r.Fpga.bram_pct -. 51.) < 5.);
  (* the 21% headline vs PolySA's 555 Gop/s *)
  let polysa =
    Option.get (Baselines.polysa.Baselines.published ~workload:"MM")
  in
  Alcotest.(check bool) "+15..25% vs PolySA" true
    (r.Fpga.gops /. polysa.Fpga.gops > 1.15
     && r.Fpga.gops /. polysa.Fpga.gops < 1.30);
  (* floorplanning pushes frequency to ~328 MHz (§VI-C) *)
  let rf =
    Fpga.evaluate ~style:Fpga.rtl_floorplanned ~device:Fpga.vu9p ~rows:10
      ~cols:16 ~vec:8 ~datatype:Fpga.Fp32
      ~efficiency:perf.Perf.pipelined_perf ~workload:"MM" d
  in
  Alcotest.(check bool) "floorplanned ~328 MHz" true
    (abs_float (rf.Fpga.mhz -. 328.) < 8.)

let test_dse_gemm_space () =
  let pts = Enumerate.design_space gemm in
  Alcotest.(check bool) "hundreds of distinct GEMM architectures" true
    (List.length pts > 100);
  (* signatures unique *)
  let sigs = List.map (fun p -> p.Enumerate.signature) pts in
  Alcotest.(check int) "unique" (List.length sigs)
    (List.length (List.sort_uniq compare sigs));
  (* every point re-validates: analysis of its transform = its signature *)
  List.iter
    (fun p ->
      Alcotest.(check string) "revalidates" p.Enumerate.signature
        (Enumerate.signature
           (Design.analyze p.Enumerate.design.Design.transform)))
    (List.filteri (fun i _ -> i < 30) pts)

let test_dse_d4_symmetry () =
  (* transposed transforms produce the same signature *)
  let t1 =
    Transform.by_names gemm [ "m"; "n"; "k" ]
      ~matrix:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 1; 1 ] ]
  in
  let t2 =
    Transform.by_names gemm [ "m"; "n"; "k" ]
      ~matrix:[ [ 0; 1; 0 ]; [ 1; 0; 0 ]; [ 1; 1; 1 ] ]
  in
  Alcotest.(check string) "transpose-equivalent"
    (Enumerate.signature (Design.analyze t1))
    (Enumerate.signature (Design.analyze t2))

let test_pareto () =
  let pts = [ (1., 5.); (2., 2.); (3., 3.); (5., 1.); (4., 4.) ] in
  let front = Enumerate.pareto_min (fun p -> p) pts in
  Alcotest.(check int) "frontier size" 3 (List.length front);
  Alcotest.(check bool) "dominated point excluded" false
    (List.mem (3., 3.) front)

let test_baseline_restriction () =
  (* systolic-only space excludes multicast designs *)
  let mtm = Search.find_design_exn gemm "MNK-MTM" in
  Alcotest.(check bool) "MTM rejected" false (Baselines.systolic_only mtm);
  let sst = Search.find_design_exn gemm "MNK-SST" in
  Alcotest.(check bool) "SST accepted" true (Baselines.systolic_only sst)

let test_baseline_depthwise_gap () =
  (* baselines have no good systolic design for depthwise conv *)
  let dw = Workloads.depthwise_conv ~k:64 ~y:14 ~x:14 ~p:3 ~q:3 in
  match Baselines.best_supported_design dw Baselines.polysa with
  | None -> () (* no design at all: fine *)
  | Some (_, r) ->
    Alcotest.(check bool) "poor systolic-only depthwise" true
      (r.Perf.normalized_perf < 0.3)

let test_baseline_published_rows () =
  List.iter
    (fun b ->
      List.iter
        (fun w ->
          match b.Baselines.published ~workload:w with
          | Some row ->
            Alcotest.(check bool) "sane row" true
              (row.Fpga.gops > 100. && row.Fpga.mhz > 100.)
          | None -> Alcotest.failf "%s missing %s" b.Baselines.name w)
        [ "MM"; "Conv" ])
    Baselines.all

(* properties *)

let prop_perf_monotone_bandwidth =
  QCheck.Test.make ~name:"more bandwidth never hurts" ~count:10
    QCheck.(int_range 4 64)
    (fun bw ->
      let mt = Workloads.mttkrp ~i:32 ~j:32 ~k:32 ~l:32 in
      let d = Search.find_design_exn mt "IKL-UBBB" in
      let at gbps =
        (Perf.evaluate
           ~config:{ Perf.default_config with bandwidth_gbps = float_of_int gbps }
           d).Perf.cycles
      in
      at bw >= at (bw * 2) -. 1e-6)

let prop_asic_positive =
  QCheck.Test.make ~name:"cost model positive and finite" ~count:40
    QCheck.(int_range 0 18)
    (fun i ->
      let all = Search.all_designs ~selection:[| 0; 1; 2 |] gemm in
      let _, d = List.nth all (i mod List.length all) in
      let r = Asic.evaluate d in
      r.Asic.power_mw > 0. && r.Asic.area > 0.
      && Float.is_finite r.Asic.power_mw && Float.is_finite r.Asic.area)

let suite =
  [ Alcotest.test_case "perf bounds" `Quick test_perf_peak_bound;
    Alcotest.test_case "fig5: gemm ordering" `Quick
      test_perf_fig5_gemm_ordering;
    Alcotest.test_case "fig5: unicast bandwidth" `Quick
      test_perf_fig5_unicast_bandwidth;
    Alcotest.test_case "fig5: conv small bounds" `Quick
      test_perf_fig5_conv_small_bounds;
    Alcotest.test_case "bgemv A unicast-only" `Quick
      test_perf_batched_gemv_unicast_only;
    Alcotest.test_case "perf tile sanity" `Quick test_perf_tile_fits;
    Alcotest.test_case "fig6: asic spread" `Quick test_asic_fig6_spread;
    Alcotest.test_case "asic breakdown" `Quick test_asic_breakdown_sums;
    Alcotest.test_case "module inventory" `Quick test_inventory_counts;
    Alcotest.test_case "table III" `Quick test_fpga_table3;
    Alcotest.test_case "dse gemm space" `Quick test_dse_gemm_space;
    Alcotest.test_case "dse D4 symmetry" `Quick test_dse_d4_symmetry;
    Alcotest.test_case "pareto frontier" `Quick test_pareto;
    Alcotest.test_case "baseline restriction" `Quick test_baseline_restriction;
    Alcotest.test_case "baseline depthwise gap" `Quick
      test_baseline_depthwise_gap;
    Alcotest.test_case "baseline published rows" `Quick
      test_baseline_published_rows ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_perf_monotone_bandwidth; prop_asic_positive ]
