(* Observability subsystem: hardware counter read-outs vs the analytic
   model on the tier-1 workloads (both backends), bit-identity of
   counters-off netlists, composition with hardening and fault injection,
   the VCD waveform bugfixes (time-0 $dumpvars, sanitizer/uniquifier,
   tape-vs-closure differential), the activity probe, measured-activity
   power scaling, and the Tl_par pool observer. *)

open Tensorlib

let check msg b = Alcotest.(check bool) msg true b

let cases =
  [ (Workloads.gemm ~m:4 ~n:4 ~k:5, "MNK-SST");
    (Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3, "KCX-SST");
    (Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3, "XYP-MMM");
    (Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4, "IKL-UBBB") ]

let gen ?(counters = false) ?(harden = Harden.none) ?(rows = 4) ?(cols = 4)
    stmt dname =
  let design = Search.find_design_exn stmt dname in
  let env = Exec.alloc_inputs stmt in
  Accel.generate ~rows ~cols ~harden ~counters design env

(* ---------------- counters vs analytic model ---------------- *)

let test_counters_match_model () =
  List.iter
    (fun (stmt, dname) ->
      let acc = gen ~counters:true stmt dname in
      List.iter
        (fun backend ->
          let v = Obs.Counters.validate ~backend acc in
          check
            (Printf.sprintf "%s/%s all counters = model" dname
               v.Obs.Counters.v_backend)
            v.Obs.Counters.v_ok;
          check
            (Printf.sprintf "%s cross-checks cover cycles, MACs, reads, \
                             writes" dname)
            (List.length v.Obs.Counters.v_checks >= 4))
        [ `Tape; `Closure ])
    cases

(* A dataflow from each reuse class beyond the four tier-1 designs:
   multicast-stationary (UTS), stationary input (TMM), systolic
   multicast (SSMT). *)
let test_counters_match_model_extended () =
  let extended =
    [ (Workloads.batched_gemv ~m:4 ~n:4 ~k:4, "MNK-UTS");
      (Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3, "KPX-TMM");
      (Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4, "IJK-SSMT") ]
  in
  List.iter
    (fun (stmt, dname) ->
      let acc = gen ~counters:true stmt dname in
      let v = Obs.Counters.validate acc in
      check (dname ^ " counters = model") v.Obs.Counters.v_ok)
    extended

(* ---------------- counters-off netlists are bit-identical --------- *)

(* Two generates in one process differ in the auto "s<id>" names drawn
   from the global signal-id counter; renumber them in first-occurrence
   order so textual equality means structural equality. *)
let normalize v =
  let tbl = Hashtbl.create 256 in
  let buf = Buffer.create (String.length v) in
  let n = String.length v in
  let i = ref 0 in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = v.[!i] in
    if c = 's' && (!i = 0 || not (is_word v.[!i - 1])) then begin
      let j = ref (!i + 1) in
      while !j < n && v.[!j] >= '0' && v.[!j] <= '9' do incr j done;
      if !j > !i + 1 && (!j >= n || not (is_word v.[!j])) then begin
        let tok = String.sub v !i (!j - !i) in
        let canon =
          match Hashtbl.find_opt tbl tok with
          | Some c -> c
          | None ->
            let c = Printf.sprintf "s%d" (Hashtbl.length tbl) in
            Hashtbl.add tbl tok c;
            c
        in
        Buffer.add_string buf canon;
        i := !j
      end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let test_counters_off_bit_identical () =
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let design = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let default_off =
    Accel.generate ~rows:4 ~cols:4 design env |> Accel.verilog
  in
  let explicit_off =
    Accel.generate ~rows:4 ~cols:4 ~counters:false design env
    |> Accel.verilog
  in
  let on =
    Accel.generate ~rows:4 ~cols:4 ~counters:true design env
    |> Accel.verilog
  in
  check "counters-off = default netlist (bit-identical up to auto ids)"
    (String.equal (normalize default_off) (normalize explicit_off));
  check "counters-on netlist actually differs"
    (not (String.equal (normalize default_off) (normalize on)));
  check "counter ports only exist when enabled"
    (let has s sub =
       let n = String.length sub and h = String.length s in
       let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     has on "ctr_cycles" && not (has default_off "ctr_cycles"))

(* ---------------- composition: counters + hardening --------------- *)

let test_counters_compose_with_harden () =
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let acc = gen ~counters:true ~harden:Harden.full stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  ignore env;
  let v = Obs.Counters.validate acc in
  check "hardened accelerator still validates counters" v.Obs.Counters.v_ok

(* ---------------- composition: counters under fault injection ----- *)

let test_counters_under_faults () =
  let acc = gen ~counters:true (Workloads.gemm ~m:4 ~n:4 ~k:4) "MNK-SST" in
  let config = { Campaign.default_config with trials = 50; seed = 7 } in
  let r = Campaign.run ~config acc in
  let classified =
    r.Campaign.masked + r.Campaign.detected + r.Campaign.hang + r.Campaign.sdc
  in
  check "campaign over instrumented accel fully classified"
    (classified = r.Campaign.trials);
  (* the instrumented design still validates after the campaign *)
  let v = Obs.Counters.validate acc in
  check "fault-free validation unaffected by prior campaign"
    v.Obs.Counters.v_ok

let test_validate_requires_counters () =
  let acc = gen (Workloads.gemm ~m:4 ~n:4 ~k:4) "MNK-SST" in
  match Obs.Counters.validate acc with
  | _ -> Alcotest.fail "expected Invalid_argument without ~counters"
  | exception Invalid_argument _ -> ()

(* ---------------- VCD: time-0 $dumpvars snapshot ------------------ *)

let has s sub =
  let n = String.length sub and h = String.length s in
  let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_vcd_initial_dump () =
  let open Signal in
  (* a register that never changes: without the $dumpvars snapshot it
     would never appear in the value stream at all *)
  let w = wire 4 in
  let q = reg w -- "stuck" in
  assign w q;
  let c = Circuit.create ~name:"vcd0" ~outputs:[ ("q", q) ] in
  let sim = Sim.create c in
  let vcd = Vcd.create sim c in
  Vcd.cycles vcd 3;
  let s = Vcd.contents vcd in
  check "dumpvars section present" (has s "$dumpvars");
  check "time 0 emitted" (has s "#0");
  (* every traced 4-bit signal dumps its initial value: the held zero *)
  check "constant-held register value dumped" (has s "b0000");
  (* the snapshot precedes the first cycle's changes *)
  let idx sub =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length s then -1
      else if String.sub s i n = sub then i
      else go (i + 1)
    in
    go 0
  in
  check "$dumpvars at time 0, before #1"
    (idx "$dumpvars" > idx "#0" && (idx "#1" = -1 || idx "$dumpvars" < idx "#1"))

(* ---------------- VCD: sanitizer and uniquifier ------------------- *)

let test_vcd_sanitize_and_uniquify () =
  let open Signal in
  let mk name =
    let w = wire 2 in
    let q = reg w -- name in
    assign w (q +: const ~width:2 1);
    q
  in
  let a = mk "a b" in
  let b = mk "a[3]" in
  let c = mk "3x" in
  let d = mk "dup" in
  let e = mk "dup" in
  let circ =
    Circuit.create ~name:"vcdsan"
      ~outputs:[ ("o1", a); ("o2", b); ("o3", c); ("o4", d); ("o5", e) ]
  in
  let sim = Sim.create circ in
  let vcd = Vcd.create sim circ in
  Vcd.cycles vcd 2;
  let s = Vcd.contents vcd in
  check "space rewritten" (has s "a_b");
  check "brackets rewritten" (has s "a_3_");
  check "leading digit prefixed" (has s "_3x");
  check "collision uniquified" (has s "dup_1");
  (* no $var line may carry an illegal identifier character *)
  String.split_on_char '\n' s
  |> List.iter (fun line ->
      if String.length line >= 4 && String.sub line 0 4 = "$var" then
        String.iter
          (fun ch ->
            match ch with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ' ' | '$'
            | '!' .. '~' ->
              ()
            | _ -> Alcotest.fail (Printf.sprintf "illegal char in %S" line))
          line)

(* ---------------- VCD: tape vs closure differential --------------- *)

let test_vcd_backend_differential () =
  let stmt = Workloads.gemm ~m:2 ~n:2 ~k:2 in
  let design = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:2 ~cols:2 design env in
  let dump backend =
    let sim = Sim.create ~backend acc.Accel.circuit in
    let vcd = Vcd.create sim acc.Accel.circuit in
    Vcd.cycles vcd acc.Accel.total_cycles;
    Vcd.contents vcd
  in
  (* the tape compiler aliases and CSE-merges wires; resolving traces
     through canonical slots must make the dumps textually identical *)
  Alcotest.(check string) "identical VCD text on both backends"
    (dump `Closure) (dump `Tape)

let test_vcd_counter_ports_traced () =
  let acc = gen ~counters:true (Workloads.gemm ~m:2 ~n:2 ~k:2) "MNK-SST"
      ~rows:2 ~cols:2 in
  let sim = Sim.create acc.Accel.circuit in
  let vcd = Vcd.create sim acc.Accel.circuit in
  Vcd.cycles vcd acc.Accel.total_cycles;
  let s = Vcd.contents vcd in
  check "cycle counter visible in waveform" (has s "ctr_cycles")

(* ---------------- activity probe ---------------------------------- *)

let test_activity_probe_known_toggles () =
  let open Signal in
  (* 1-bit oscillator: exactly one toggle per cycle *)
  let w = wire 1 in
  let q = reg w -- "osc" in
  assign w (not_ q);
  let c = Circuit.create ~name:"act" ~outputs:[ ("q", q) ] in
  let run backend =
    let sim = Sim.create ~backend c in
    let probe = Activity.create sim c in
    Activity.cycles probe 10;
    Activity.report probe
  in
  let rt = run `Tape and rc = run `Closure in
  List.iter
    (fun (tag, (r : Activity.report)) ->
      Alcotest.(check int) (tag ^ " cycles") 10 r.Activity.cycles;
      Alcotest.(check int) (tag ^ " toggles") 10 r.Activity.reg_toggles;
      check (tag ^ " alpha_reg = 1")
        (abs_float (Activity.alpha_reg r -. 1.0) < 1e-9))
    [ ("tape", rt); ("closure", rc) ];
  Alcotest.(check int) "backends agree on toggles" rt.Activity.reg_toggles
    rc.Activity.reg_toggles

let test_activity_probe_accelerator () =
  let acc = gen (Workloads.gemm ~m:4 ~n:4 ~k:4) "MNK-SST" in
  let run backend =
    let sim = Sim.create ~backend acc.Accel.circuit in
    let probe = Activity.create sim acc.Accel.circuit in
    Activity.cycles probe (Accel.planned_cycles acc);
    Accel.check_done acc sim;
    Activity.report probe
  in
  let rt = run `Tape and rc = run `Closure in
  check "some register toggled" (rt.Activity.reg_toggles > 0);
  check "writes observed = 16 outputs" (rt.Activity.ram_writes = 16);
  Alcotest.(check int) "backends agree on reg toggles"
    rt.Activity.reg_toggles rc.Activity.reg_toggles;
  Alcotest.(check int) "backends agree on ram accesses"
    (rt.Activity.ram_reads + rt.Activity.ram_writes)
    (rc.Activity.ram_reads + rc.Activity.ram_writes)

(* ---------------- ASIC model under measured activity --------------- *)

let test_asic_activity_scaling () =
  let acc = gen (Workloads.gemm ~m:4 ~n:4 ~k:4) "MNK-SST" in
  let circuit = acc.Accel.circuit in
  let base = Asic.evaluate_netlist circuit in
  let full = Asic.evaluate_netlist ~activity:Asic.full_activity circuit in
  check "full activity = default report"
    (base.Asic.power_mw = full.Asic.power_mw
     && base.Asic.breakdown = full.Asic.breakdown);
  let half =
    Asic.evaluate_netlist
      ~activity:
        { Asic.alpha_compute = 0.5; alpha_reg = 0.5; alpha_mem = 0.5 }
      circuit
  in
  let cat (r : Asic.report) k = List.assoc k r.Asic.breakdown in
  List.iter
    (fun k ->
      check (k ^ " halves")
        (abs_float (cat half k -. (0.5 *. cat base k)) < 1e-9))
    [ "compute"; "registers"; "memory" ];
  check "control static" (cat half "control" = cat base "control");
  check "area unchanged" (half.Asic.area = base.Asic.area);
  check "power strictly reduced" (half.Asic.power_mw < base.Asic.power_mw)

let test_power_measured_le_modeled () =
  List.iter
    (fun (stmt, dname) ->
      let acc = gen stmt dname in
      let p = Obs.Power.measure acc in
      check (dname ^ " measured power <= modeled (activity <= 1)")
        (p.Obs.Power.measured.Asic.power_mw
         <= p.Obs.Power.modeled.Asic.power_mw +. 1e-9);
      check (dname ^ " alphas within [0, 1]")
        (let a = p.Obs.Power.alpha in
         a.Asic.alpha_compute >= 0. && a.Asic.alpha_compute <= 1.
         && a.Asic.alpha_reg >= 0. && a.Asic.alpha_reg <= 1.
         && a.Asic.alpha_mem >= 0. && a.Asic.alpha_mem <= 1.))
    cases

(* ---------------- Tl_par pool observer ----------------------------- *)

let test_par_wrapper_observes_tasks () =
  let lock = Mutex.create () in
  let seen = ref [] in
  let wrapper =
    { Par.wrap =
        (fun ~label ~domain ~index f ->
          let v = f () in
          Mutex.lock lock;
          seen := (label, domain, index) :: !seen;
          Mutex.unlock lock;
          v) }
  in
  Par.set_wrapper (Some wrapper);
  Fun.protect
    ~finally:(fun () -> Par.set_wrapper None)
    (fun () ->
      let xs = [ 1; 2; 3; 4; 5 ] in
      let ys = Par.map ~domains:1 ~label:"obs-test" (fun x -> x * x) xs in
      Alcotest.(check (list int)) "results unchanged" [ 1; 4; 9; 16; 25 ] ys;
      let obs = List.filter (fun (l, _, _) -> l = "obs-test") !seen in
      Alcotest.(check int) "every task observed" 5 (List.length obs);
      let idxs = List.sort compare (List.map (fun (_, _, i) -> i) obs) in
      Alcotest.(check (list int)) "indices 0..4" [ 0; 1; 2; 3; 4 ] idxs);
  (* wrapper uninstalled: no further observations *)
  let before = List.length !seen in
  ignore (Par.map ~label:"obs-test" (fun x -> x) [ 1; 2 ]);
  Alcotest.(check int) "uninstalled wrapper observes nothing" before
    (List.length !seen)

let test_trace_pool_attribution () =
  let trace = Obs.Trace.create () in
  let now = ref 0.0 in
  let clock () =
    now := !now +. 0.001;
    !now
  in
  Par.set_wrapper (Some (Obs.Trace.pool_wrapper trace ~clock));
  Fun.protect
    ~finally:(fun () -> Par.set_wrapper None)
    (fun () ->
      ignore (Par.map ~domains:1 ~label:"traced" (fun x -> x + 1) [ 1; 2; 3 ]));
  Alcotest.(check int) "three spans" 3 (Obs.Trace.length trace);
  let json = Obs.Trace.to_json trace in
  check "trace_event document" (has json "\"traceEvents\"");
  check "pool category" (has json "\"cat\": \"tl_par\"");
  check "span named by pool label" (has json "\"name\": \"traced\"");
  check "item index attributed" (has json "\"index\": \"2\"")

let suite =
  [ Alcotest.test_case "counters match model (4 workloads x 2 backends)"
      `Quick test_counters_match_model;
    Alcotest.test_case "counters match model (extended dataflow classes)"
      `Quick test_counters_match_model_extended;
    Alcotest.test_case "counters-off netlist bit-identical" `Quick
      test_counters_off_bit_identical;
    Alcotest.test_case "counters compose with hardening" `Quick
      test_counters_compose_with_harden;
    Alcotest.test_case "counters under fault campaign" `Quick
      test_counters_under_faults;
    Alcotest.test_case "validate rejects uninstrumented accel" `Quick
      test_validate_requires_counters;
    Alcotest.test_case "vcd: time-0 $dumpvars snapshot" `Quick
      test_vcd_initial_dump;
    Alcotest.test_case "vcd: sanitizer and uniquifier" `Quick
      test_vcd_sanitize_and_uniquify;
    Alcotest.test_case "vcd: tape vs closure differential" `Quick
      test_vcd_backend_differential;
    Alcotest.test_case "vcd: counter ports traced" `Quick
      test_vcd_counter_ports_traced;
    Alcotest.test_case "activity probe: known toggle counts" `Quick
      test_activity_probe_known_toggles;
    Alcotest.test_case "activity probe: accelerator, both backends" `Quick
      test_activity_probe_accelerator;
    Alcotest.test_case "asic: activity factors scale power" `Quick
      test_asic_activity_scaling;
    Alcotest.test_case "power: measured <= modeled on tier-1" `Quick
      test_power_measured_le_modeled;
    Alcotest.test_case "par: wrapper observes every task" `Quick
      test_par_wrapper_observes_tasks;
    Alcotest.test_case "trace: pool span attribution" `Quick
      test_trace_pool_attribution ]
