(* Einsum parser front-end. *)

open Tensorlib

let test_parse_gemm () =
  let parsed =
    Parse.stmt "C[m,n] += A[m,k] * B[n,k]"
      ~extents:[ ("m", 4); ("n", 5); ("k", 6) ]
  in
  let builtin = Workloads.gemm ~m:4 ~n:5 ~k:6 in
  Alcotest.(check string) "same rendering"
    (Format.asprintf "%a" Stmt.pp builtin)
    (Format.asprintf "%a" Stmt.pp parsed);
  (* identical semantics *)
  let env = Exec.alloc_inputs builtin in
  Alcotest.(check bool) "same result" true
    (Dense.equal (Exec.run builtin env) (Exec.run parsed env))

let test_parse_conv_with_sums () =
  let parsed =
    Parse.stmt "C[k,y,x] += A[c, y+p, x+q] * B[k,c,p,q]"
      ~extents:[ ("k", 2); ("c", 2); ("y", 3); ("x", 3); ("p", 2); ("q", 2) ]
  in
  let builtin = Workloads.conv2d ~k:2 ~c:2 ~y:3 ~x:3 ~p:2 ~q:2 in
  let env = Exec.alloc_inputs builtin in
  Alcotest.(check bool) "conv semantics" true
    (Dense.equal (Exec.run builtin env) (Exec.run parsed env))

let test_parse_strided_coefficients () =
  let parsed =
    Parse.stmt "C[k,y,x] += A[c, 2y+p, 2x+q] * B[k,c,p,q]"
      ~extents:[ ("k", 2); ("c", 2); ("y", 2); ("x", 2); ("p", 3); ("q", 3) ]
  in
  let builtin =
    Workloads.conv2d_strided ~stride:2 ~k:2 ~c:2 ~y:2 ~x:2 ~p:3 ~q:3
  in
  let env = Exec.alloc_inputs builtin in
  Alcotest.(check bool) "stride-2 semantics" true
    (Dense.equal (Exec.run builtin env) (Exec.run parsed env))

let test_parse_three_inputs () =
  let parsed =
    Parse.stmt "D[i,j] += A[i,k,l] * B[k,j] * C[l,j]"
      ~extents:[ ("i", 3); ("j", 3); ("k", 3); ("l", 3) ]
  in
  Alcotest.(check int) "3 inputs" 3 (List.length parsed.Stmt.inputs);
  let builtin = Workloads.mttkrp ~i:3 ~j:3 ~k:3 ~l:3 in
  let env = Exec.alloc_inputs builtin in
  Alcotest.(check bool) "mttkrp semantics" true
    (Dense.equal (Exec.run builtin env) (Exec.run parsed env))

let test_parse_whitespace_insensitive () =
  let a =
    Parse.stmt "  C[ m , n ]+=A[m,k]*B[n,k]  "
      ~extents:[ ("m", 2); ("n", 2); ("k", 2) ]
  in
  Alcotest.(check int) "depth" 3 (Stmt.depth a)

let check_error msg f =
  try
    ignore (f ());
    Alcotest.failf "expected Parse_error (%s)" msg
  with Parse.Parse_error _ -> ()

let test_parse_errors () =
  check_error "missing extent" (fun () ->
      Parse.stmt "C[m] += A[m,k] * B[k]" ~extents:[ ("m", 2) ]);
  check_error "no +=" (fun () ->
      Parse.stmt "C[m] A[m]" ~extents:[ ("m", 2) ]);
  check_error "garbage" (fun () ->
      Parse.stmt "C[m] += A[m] ?" ~extents:[ ("m", 2) ]);
  check_error "empty dims" (fun () ->
      Parse.stmt "C[] += A[m]" ~extents:[ ("m", 2) ]);
  check_error "coefficient without iterator" (fun () ->
      Parse.stmt "C[m] += A[2]" ~extents:[ ("m", 2) ])

let test_parse_end_to_end_hardware () =
  (* the parsed workload drives the whole generator *)
  let stmt =
    Parse.stmt ~name:"custom" "O[i,j] += A[i,k] * B[k,j]"
      ~extents:[ ("i", 4); ("j", 4); ("k", 4) ]
  in
  let d = Search.find_design_exn stmt "IJK-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:4 ~cols:4 d env in
  Alcotest.(check bool) "parsed workload matches golden" true
    (Dense.equal (Exec.run stmt env) (Accel.execute acc))

let suite =
  [ Alcotest.test_case "parse gemm" `Quick test_parse_gemm;
    Alcotest.test_case "parse conv sums" `Quick test_parse_conv_with_sums;
    Alcotest.test_case "parse strided" `Quick test_parse_strided_coefficients;
    Alcotest.test_case "parse 3 inputs" `Quick test_parse_three_inputs;
    Alcotest.test_case "parse whitespace" `Quick
      test_parse_whitespace_insensitive;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parsed -> hardware" `Quick
      test_parse_end_to_end_hardware ]
