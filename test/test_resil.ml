(* Software-layer resilience: budgets, seeded retry, chaos injection,
   pool failure isolation, checkpoint/resume, and the hardened CLI
   surfaces (sweep --resume, serve stdin limits). *)

open Tensorlib

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  path

let with_chaos cfg f =
  Resil.Chaos.arm cfg;
  Fun.protect ~finally:Resil.Chaos.disarm f

(* ---------------- budgets ---------------- *)

let test_budget_unlimited () =
  let b = Resil.Budget.unlimited in
  Alcotest.(check bool) "is_unlimited" true (Resil.Budget.is_unlimited b);
  for _ = 1 to 1000 do
    Resil.Budget.check b
  done;
  Alcotest.(check bool) "never expires" false (Resil.Budget.expired b);
  Alcotest.(check (float 0.0)) "infinite remaining" infinity
    (Resil.Budget.remaining_s b)

let test_budget_checks () =
  let b = Resil.Budget.of_checks ~label:"unit-test" 3 in
  Alcotest.(check bool) "poll 1" false (Resil.Budget.expired b);
  Alcotest.(check bool) "poll 2" false (Resil.Budget.expired b);
  Alcotest.(check bool) "poll 3" false (Resil.Budget.expired b);
  Alcotest.(check bool) "poll 4 expired" true (Resil.Budget.expired b);
  (match Resil.Budget.check b with
  | () -> Alcotest.fail "check should raise once expired"
  | exception Resil.Budget.Expired l ->
    Alcotest.(check string) "label in exception" "unit-test" l);
  (match Resil.Budget.of_checks (-1) with
  | _ -> Alcotest.fail "negative check budget accepted"
  | exception Invalid_argument _ -> ())

let test_budget_deadline_fake_clock () =
  let now = ref 100.0 in
  let b =
    Resil.Budget.of_seconds ~clock:(fun () -> !now) ~label:"fake" 5.0
  in
  Alcotest.(check bool) "fresh" false (Resil.Budget.expired b);
  Alcotest.(check (float 0.001)) "remaining" 5.0 (Resil.Budget.remaining_s b);
  now := 104.9;
  Alcotest.(check bool) "almost" false (Resil.Budget.expired b);
  now := 105.0;
  Alcotest.(check bool) "expired at deadline" true (Resil.Budget.expired b);
  Alcotest.(check (float 0.0)) "clamped remaining" 0.0
    (Resil.Budget.remaining_s b);
  match Resil.Budget.of_seconds ~clock:(fun () -> 0.) (-1.) with
  | _ -> Alcotest.fail "negative deadline accepted"
  | exception Invalid_argument _ -> ()

(* ---------------- retry ---------------- *)

let counting_sleep slept = fun d -> slept := d :: !slept

let test_retry_heals () =
  Resil.Retry.reset_counters ();
  let slept = ref [] in
  let policy =
    { Resil.Retry.default with attempts = 5; sleep = counting_sleep slept }
  in
  let calls = ref 0 in
  let f () =
    incr calls;
    if !calls <= 2 then raise (Sys_error "weather") else "sunny"
  in
  Alcotest.(check string) "healed" "sunny"
    (Resil.Retry.with_retry ~policy ~label:"t" f);
  Alcotest.(check int) "three attempts" 3 !calls;
  Alcotest.(check int) "slept between attempts" 2 (List.length !slept);
  Alcotest.(check int) "retries counted" 2 (Resil.Retry.retries ());
  Alcotest.(check int) "no giveup" 0 (Resil.Retry.giveups ())

let test_retry_deterministic_backoff () =
  let p = { Resil.Retry.default with base_delay_s = 0.01; multiplier = 4.0 } in
  let d0 = Resil.Retry.delay_s p ~seed:9 ~label:"x" 0 in
  let d0' = Resil.Retry.delay_s p ~seed:9 ~label:"x" 0 in
  let d2 = Resil.Retry.delay_s p ~seed:9 ~label:"x" 2 in
  Alcotest.(check (float 0.0)) "pure function of (seed,label,k)" d0 d0';
  Alcotest.(check bool) "within jittered bounds" true
    (d0 >= 0.01 *. (1. -. p.Resil.Retry.jitter) && d0 <= 0.01);
  Alcotest.(check bool) "exponential growth" true (d2 > d0);
  Alcotest.(check bool) "seed changes the jitter" true
    (Resil.Retry.delay_s p ~seed:9 ~label:"x" 1
     <> Resil.Retry.delay_s p ~seed:10 ~label:"x" 1
    || Resil.Retry.delay_s p ~seed:9 ~label:"x" 2
       <> Resil.Retry.delay_s p ~seed:10 ~label:"x" 2)

let test_retry_exhaustion () =
  Resil.Retry.reset_counters ();
  let slept = ref [] in
  let policy =
    { Resil.Retry.default with attempts = 3; sleep = counting_sleep slept }
  in
  let calls = ref 0 in
  let f () =
    incr calls;
    raise (Sys_error "always")
  in
  (match Resil.Retry.with_retry ~policy ~label:"t" f with
  | _ -> Alcotest.fail "exhausted retry must re-raise"
  | exception Sys_error _ -> ());
  Alcotest.(check int) "all attempts used" 3 !calls;
  Alcotest.(check int) "one giveup" 1 (Resil.Retry.giveups ());
  calls := 0;
  Alcotest.(check bool) "with_retry_opt degrades to None" true
    (Resil.Retry.with_retry_opt ~policy ~label:"t" f = None);
  Alcotest.(check int) "opt also used all attempts" 3 !calls

let test_retry_non_transient () =
  let slept = ref [] in
  let policy = { Resil.Retry.default with sleep = counting_sleep slept } in
  let calls = ref 0 in
  let f () =
    incr calls;
    failwith "logic bug"
  in
  (match Resil.Retry.with_retry ~policy ~label:"t" f with
  | _ -> Alcotest.fail "logic bugs must propagate"
  | exception Failure _ -> ());
  Alcotest.(check int) "no retry on logic bugs" 1 !calls;
  Alcotest.(check int) "never slept" 0 (List.length !slept)

(* ---------------- chaos ---------------- *)

let test_chaos_determinism () =
  (* the fire decision is a pure function of (seed, site, key) *)
  let a =
    List.init 64 (fun k ->
        Resil.Chaos.would_fire ~seed:3 ~rate:0.5 ~site:"s" ~key:k)
  in
  let b =
    List.init 64 (fun k ->
        Resil.Chaos.would_fire ~seed:3 ~rate:0.5 ~site:"s" ~key:k)
  in
  Alcotest.(check bool) "replayable" true (a = b);
  Alcotest.(check bool) "seed matters" true
    (a
    <> List.init 64 (fun k ->
           Resil.Chaos.would_fire ~seed:4 ~rate:0.5 ~site:"s" ~key:k));
  Alcotest.(check bool) "rate 0 never fires" false
    (List.exists Fun.id
       (List.init 64 (fun k ->
            Resil.Chaos.would_fire ~seed:3 ~rate:0.0 ~site:"s" ~key:k)));
  Alcotest.(check bool) "rate 1 always fires" true
    (List.for_all Fun.id
       (List.init 64 (fun k ->
            Resil.Chaos.would_fire ~seed:3 ~rate:1.0 ~site:"s" ~key:k)));
  (* disarmed probes are no-ops *)
  Resil.Chaos.disarm ();
  Alcotest.(check bool) "disarmed draw" true
    (Resil.Chaos.draw ~key:0 "s" = None);
  Resil.Chaos.probe ~key:0 ~site:"s" ();
  Alcotest.(check string) "disarmed mangle is identity" "abc"
    (Resil.Chaos.mangle ~key:0 ~site:"s" "abc");
  match Resil.Chaos.arm { Resil.Chaos.seed = 0; rate = 1.5; sites = [] } with
  | () -> Alcotest.fail "rate 1.5 accepted"
  | exception Invalid_argument _ -> ()

let test_chaos_mangle () =
  with_chaos
    {
      Resil.Chaos.seed = 1;
      rate = 1.0;
      sites = [ ("w", [ Resil.Chaos.Truncate 0.5 ]) ];
    }
    (fun () ->
      let out = Resil.Chaos.mangle ~key:0 ~site:"w" "0123456789" in
      Alcotest.(check bool) "strict prefix" true
        (String.length out < 10 && out = String.sub "0123456789" 0 (String.length out)));
  with_chaos
    {
      Resil.Chaos.seed = 1;
      rate = 1.0;
      sites = [ ("w", [ Resil.Chaos.Corrupt ]) ];
    }
    (fun () ->
      let src = "0123456789" in
      let out = Resil.Chaos.mangle ~key:0 ~site:"w" src in
      Alcotest.(check int) "same length" 10 (String.length out);
      let diffs = ref 0 in
      String.iteri (fun i c -> if c <> src.[i] then incr diffs) out;
      Alcotest.(check int) "exactly one byte flipped" 1 !diffs);
  (* unarmed site untouched even while armed *)
  with_chaos
    {
      Resil.Chaos.seed = 1;
      rate = 1.0;
      sites = [ ("w", [ Resil.Chaos.Corrupt ]) ];
    }
    (fun () ->
      Alcotest.(check string) "other sites identity" "abc"
        (Resil.Chaos.mangle ~key:0 ~site:"other" "abc"))

(* ---------------- pool failure isolation ---------------- *)

exception Boom of int

let test_par_try_map_isolation () =
  let items = List.init 40 Fun.id in
  let f i = if i mod 7 = 3 then raise (Boom i) else i * 10 in
  let shape r =
    List.map (function Ok v -> `Ok v | Error (Boom i) -> `Boom i | Error _ -> `Other) r
  in
  let r1 = shape (Par.try_map ~domains:1 f items) in
  let r3 = shape (Par.try_map ~domains:3 f items) in
  let r8 = shape (Par.try_map ~domains:8 f items) in
  Alcotest.(check bool) "identical across widths" true (r1 = r3 && r3 = r8);
  List.iteri
    (fun i s ->
      if i mod 7 = 3 then
        Alcotest.(check bool) (Printf.sprintf "item %d failed" i) true
          (s = `Boom i)
      else
        Alcotest.(check bool) (Printf.sprintf "item %d ok" i) true
          (s = `Ok (i * 10)))
    r1;
  (* fail-fast map re-raises the lowest-index failure *)
  List.iter
    (fun width ->
      match Par.map ~domains:width f items with
      | _ -> Alcotest.fail "map must re-raise"
      | exception Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "lowest index at width %d" width)
          3 i)
    [ 1; 3; 8 ]

let test_par_chaos_delays_keep_order () =
  with_chaos
    {
      Resil.Chaos.seed = 13;
      rate = 0.5;
      sites = [ ("par:resil-ord", [ Resil.Chaos.Delay 10000 ]) ];
    }
    (fun () ->
      let items = List.init 60 Fun.id in
      let got = Par.map ~domains:8 ~label:"resil-ord" (fun i -> i + 1) items in
      Alcotest.(check (list int)) "order preserved under delays"
        (List.map (fun i -> i + 1) items)
        got)

let test_par_chaos_kills_width_independent () =
  let run width =
    with_chaos
      {
        Resil.Chaos.seed = 21;
        rate = 0.4;
        sites = [ ("par:resil-kill", [ Resil.Chaos.Fail "killed" ]) ];
      }
      (fun () ->
        Par.try_map ~domains:width ~label:"resil-kill" (fun i -> i) (List.init 50 Fun.id)
        |> List.map Result.is_ok)
  in
  let p1 = run 1 in
  Alcotest.(check bool) "some kills, some survivors" true
    (List.exists not p1 && List.exists Fun.id p1);
  Alcotest.(check (list bool)) "width 3 identical" p1 (run 3);
  Alcotest.(check (list bool)) "width 8 identical" p1 (run 8)

(* ---------------- store under chaos ---------------- *)

let test_store_read_weather () =
  let retry = { Resil.Retry.default with sleep = ignore } in
  let root = temp_dir "tlresil" in
  let st = Store.open_store ~retry ~root () in
  Store.put st "k" "v";
  (* permanent weather: every read fails, retry exhausts, find degrades
     to a miss instead of raising *)
  with_chaos
    {
      Resil.Chaos.seed = 2;
      rate = 1.0;
      sites = [ ("store.read", [ Resil.Chaos.Fail "dead disk" ]) ];
    }
    (fun () ->
      Alcotest.(check (option string)) "degraded to miss" None
        (Store.find st "k"));
  let degraded, _ = Store.io_failures st in
  Alcotest.(check bool) "degradation counted" true (degraded >= 1);
  Alcotest.(check (option string)) "healthy again once disarmed" (Some "v")
    (Store.find st "k")

let test_store_torn_write_all_offsets () =
  let root = temp_dir "tlresil" in
  let st = Store.open_store ~root () in
  Store.put st "victim" "torn-write-payload";
  let path =
    Filename.concat (Filename.concat root "entries") (Store.digest_hex "victim")
  in
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  for cut = 0 to String.length full - 1 do
    let oc = open_out_bin path in
    output_string oc (String.sub full 0 cut);
    close_out oc;
    let fresh = Store.open_store ~root () in
    Alcotest.(check (option string))
      (Printf.sprintf "cut at %d is a miss" cut)
      None (Store.find fresh "victim")
  done

let test_store_eviction_concurrent_writers () =
  let root = temp_dir "tlresil" in
  let st = Store.open_store ~max_entries:4 ~root () in
  (* two pool workers race puts into a store 10x over its cap; eviction
     must stay consistent and every surviving entry byte-exact *)
  let keys = List.init 40 (fun i -> Printf.sprintf "k%d" i) in
  let _ =
    Par.map ~domains:2 ~label:"evict-race"
      (fun k ->
        Store.put st k ("payload:" ^ k);
        Store.find st k)
      keys
  in
  let entries = (Store.stats st).Par.Cache.entries in
  Alcotest.(check bool) "cap respected" true (entries <= 4);
  List.iter
    (fun k ->
      match Store.find st k with
      | None -> ()
      | Some v -> Alcotest.(check string) ("exact " ^ k) ("payload:" ^ k) v)
    keys

(* ---------------- DSE budgets ---------------- *)

let test_enumerate_budget () =
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let full = Enumerate.design_space ~domains:1 stmt in
  let unlimited =
    Enumerate.design_space ~domains:1 ~budget:Resil.Budget.unlimited stmt
  in
  Alcotest.(check int) "unlimited budget changes nothing"
    (List.length full) (List.length unlimited);
  (match
     Enumerate.design_space ~domains:1 ~budget:(Resil.Budget.of_checks 5) stmt
   with
  | _ -> Alcotest.fail "tiny budget must expire"
  | exception Resil.Budget.Expired _ -> ());
  match Explore.explore ~domains:1 ~budget:(Resil.Budget.of_checks 1) stmt with
  | _ -> Alcotest.fail "explore budget must expire"
  | exception Resil.Budget.Expired _ -> ()

(* ---------------- checkpoints ---------------- *)

let test_checkpoint_roundtrip () =
  let path = Filename.temp_file "tlckpt" ".ckpt" in
  let keys = [ "alpha"; "beta with spaces"; "gamma|delta" ] in
  Resil.Checkpoint.save ~path ~tag:"tag1" keys;
  Alcotest.(check (option (list string))) "roundtrip" (Some keys)
    (Resil.Checkpoint.load ~path ~tag:"tag1");
  Alcotest.(check (option (list string))) "tag mismatch" None
    (Resil.Checkpoint.load ~path ~tag:"tag2");
  (* corruption: flip one byte -> None, never garbage *)
  let ic = open_in_bin path in
  let c = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string c in
  Bytes.set b (Bytes.length b - 2) '!';
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  Alcotest.(check (option (list string))) "corruption -> None" None
    (Resil.Checkpoint.load ~path ~tag:"tag1");
  Resil.Checkpoint.remove ~path;
  Alcotest.(check (option (list string))) "missing -> None" None
    (Resil.Checkpoint.load ~path ~tag:"tag1");
  Resil.Checkpoint.remove ~path (* idempotent *);
  (match Resil.Checkpoint.save ~path ~tag:"t" [ "bad\nkey" ] with
  | () -> Alcotest.fail "newline key accepted"
  | exception Invalid_argument _ -> ());
  match Resil.Checkpoint.save ~path ~tag:"bad tag" [ "k" ] with
  | () -> Alcotest.fail "whitespace tag accepted"
  | exception Invalid_argument _ -> ()

(* ---------------- partial sweeps + resume ---------------- *)

let tiny_layers () =
  [ ("l0", Workloads.gemm ~m:4 ~n:4 ~k:4);
    ("l1", Workloads.gemm ~m:4 ~n:4 ~k:4) (* dup of l0 *);
    ("l2", Workloads.batched_gemv ~m:4 ~n:4 ~k:4);
    ("l3", Workloads.gemm ~m:5 ~n:4 ~k:4) ]

let test_sweep_budget_partial () =
  let root = temp_dir "tlresil" in
  let store = Store.open_store ~root () in
  let r =
    Network.sweep ~domains:1 ~per_shape_limit:4
      ~budget:(Resil.Budget.of_checks 1) ~store ~name:"t" (tiny_layers ())
  in
  Alcotest.(check bool) "partial" false r.Network.r_complete;
  Alcotest.(check int) "all shapes degraded" 3 r.Network.r_degraded_shapes;
  List.iter
    (fun (l : Network.layer) ->
      Alcotest.(check bool) ("degraded " ^ l.Network.l_name) true
        l.Network.l_degraded;
      Alcotest.(check bool) ("estimate present " ^ l.Network.l_name) true
        (match l.Network.l_est_cycles with Some c -> c > 0. | None -> false))
    r.Network.r_layers;
  Alcotest.(check bool) "totals carry the estimates" true
    (r.Network.r_total_cycles > 0.)

let test_sweep_interrupt_resume_digest () =
  let layers = tiny_layers () in
  let kill_rate = 0.5 in
  let fires s k =
    Resil.Chaos.would_fire ~seed:s ~rate:kill_rate ~site:"par:network-sweep"
      ~key:k
  in
  let rec find_seed s =
    if s > 100_000 then Alcotest.fail "no suitable chaos seed"
    else if fires s 0 && not (fires s 1) && not (fires s 2) then s
    else find_seed (s + 1)
  in
  let seed = find_seed 0 in
  List.iter
    (fun width ->
      let cold_root = temp_dir "tlcold" in
      let cold =
        Network.sweep ~domains:width ~per_shape_limit:4
          ~store:(Store.open_store ~root:cold_root ())
          ~name:"t" layers
      in
      let root = temp_dir "tlint" in
      let store = Store.open_store ~root () in
      let ckpt = Filename.concat root "sweep-t.ckpt" in
      let interrupted =
        with_chaos
          {
            Resil.Chaos.seed;
            rate = kill_rate;
            sites =
              [ ("par:network-sweep", [ Resil.Chaos.Fail "interrupted" ]) ];
          }
          (fun () ->
            Network.sweep ~domains:width ~per_shape_limit:4 ~checkpoint:ckpt
              ~store ~name:"t" layers)
      in
      Alcotest.(check bool)
        (Printf.sprintf "width %d interrupted" width)
        false interrupted.Network.r_complete;
      Alcotest.(check int)
        (Printf.sprintf "width %d one shape degraded" width)
        1 interrupted.Network.r_degraded_shapes;
      Alcotest.(check bool)
        (Printf.sprintf "width %d checkpoint exists" width)
        true (Sys.file_exists ckpt);
      let resumed =
        Network.sweep ~domains:width ~per_shape_limit:4 ~checkpoint:ckpt
          ~resume:true ~store ~name:"t" layers
      in
      Alcotest.(check bool)
        (Printf.sprintf "width %d resumed complete" width)
        true resumed.Network.r_complete;
      Alcotest.(check int)
        (Printf.sprintf "width %d resumed from checkpoint" width)
        2 resumed.Network.r_resumed_shapes;
      Alcotest.(check string)
        (Printf.sprintf "width %d digest bit-identical to cold" width)
        cold.Network.r_digest resumed.Network.r_digest;
      Alcotest.(check bool)
        (Printf.sprintf "width %d checkpoint removed on completion" width)
        false (Sys.file_exists ckpt))
    [ 1; 3 ]

(* ---------------- hardened CLI surfaces ---------------- *)

let cli =
  if Sys.file_exists "../bin/tensorlib_cli.exe" then "../bin/tensorlib_cli.exe"
  else "_build/default/bin/tensorlib_cli.exe"

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let run_cli args =
  let out = Filename.temp_file "tlcli" ".out" in
  let err = Filename.temp_file "tlcli" ".err" in
  let rc =
    Sys.command
      (Printf.sprintf "%s %s > %s 2> %s" (Filename.quote cli) args
         (Filename.quote out) (Filename.quote err))
  in
  let read path =
    let ic = open_in path in
    let c = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    c
  in
  (rc, read out, read err)

let test_cli_sweep_resume_validation () =
  let rc, _, err = run_cli "sweep --network tiny --resume" in
  Alcotest.(check int) "--resume without --store exits 2" 2 rc;
  Alcotest.(check bool) "mentions --store" true (contains err "--store");
  let rc, _, _ = run_cli "sweep --network tiny --deadline-ms 0" in
  Alcotest.(check int) "bad deadline exits 2" 2 rc;
  let rc, _, err =
    run_cli "sweep --network tiny --deadline-ms 10 --budget-checks 10"
  in
  Alcotest.(check int) "conflicting budgets exit 2" 2 rc;
  Alcotest.(check bool) "conflict named" true (contains err "conflict")

let test_cli_serve_hardening () =
  let requests = Filename.temp_file "tlreq" ".jsonl" in
  let oc = open_out requests in
  (* gemm expr requests keep this fast; the giant line must be answered
     with a structured error, the trailing request has no newline *)
  output_string oc
    "{\"id\": 1, \"expr\": \"C[m,n] += A[m,k] * B[n,k]\", \"extents\": \
     \"m=4,n=4,k=4\"}\n";
  output_string oc (String.make 2000 'a' ^ "\n");
  output_string oc
    "{\"id\": 2, \"expr\": \"C[m,n] += A[m,k] * B[n,k]\", \"extents\": \
     \"m=4,n=4,k=4\"}";
  close_out oc;
  let out_file = Filename.temp_file "tlserve" ".out" in
  let err_file = Filename.temp_file "tlserve" ".err" in
  let rc =
    Sys.command
      (Printf.sprintf
         "%s serve --limit 4 --max-request-bytes 512 < %s > %s 2> %s"
         (Filename.quote cli) (Filename.quote requests)
         (Filename.quote out_file) (Filename.quote err_file))
  in
  Alcotest.(check int) "clean exit 0 on mid-line EOF" 0 rc;
  let read path =
    let ic = open_in path in
    let c = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    c
  in
  let out = read out_file in
  let err = read err_file in
  Sys.remove requests;
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "three responses" 3 (List.length lines);
  (match List.map Json.parse lines with
  | [ Ok j1; Ok j2; Ok j3 ] ->
    Alcotest.(check bool) "request 1 ok" true
      (Json.member "ok" j1 = Some (Json.Bool true));
    Alcotest.(check bool) "oversized line rejected" true
      (Json.member "ok" j2 = Some (Json.Bool false));
    Alcotest.(check bool) "oversized names the cap" true
      (match Json.mem_string j2 "error" with
      | Some e -> contains e "max-request-bytes"
      | None -> false);
    Alcotest.(check bool) "mid-line-EOF request still served" true
      (Json.member "ok" j3 = Some (Json.Bool true))
  | _ -> Alcotest.fail "responses must all be JSON");
  Alcotest.(check bool) "stats line on stderr" true
    (contains err "serve: shutdown after 3 responses")

let suite =
  [ Alcotest.test_case "budget unlimited" `Quick test_budget_unlimited;
    Alcotest.test_case "budget checks" `Quick test_budget_checks;
    Alcotest.test_case "budget deadline (fake clock)" `Quick
      test_budget_deadline_fake_clock;
    Alcotest.test_case "retry heals transients" `Quick test_retry_heals;
    Alcotest.test_case "retry backoff deterministic" `Quick
      test_retry_deterministic_backoff;
    Alcotest.test_case "retry exhaustion" `Quick test_retry_exhaustion;
    Alcotest.test_case "retry skips logic bugs" `Quick test_retry_non_transient;
    Alcotest.test_case "chaos fire decision pure" `Quick test_chaos_determinism;
    Alcotest.test_case "chaos write mangling" `Quick test_chaos_mangle;
    Alcotest.test_case "pool failure isolation" `Quick
      test_par_try_map_isolation;
    Alcotest.test_case "pool order under injected delays" `Quick
      test_par_chaos_delays_keep_order;
    Alcotest.test_case "pool kills width-independent" `Quick
      test_par_chaos_kills_width_independent;
    Alcotest.test_case "store read weather -> miss" `Quick
      test_store_read_weather;
    Alcotest.test_case "store torn write all offsets" `Quick
      test_store_torn_write_all_offsets;
    Alcotest.test_case "store eviction race" `Quick
      test_store_eviction_concurrent_writers;
    Alcotest.test_case "enumerate/explore budgets" `Quick
      test_enumerate_budget;
    Alcotest.test_case "checkpoint codec" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "sweep budget -> typed partial" `Quick
      test_sweep_budget_partial;
    Alcotest.test_case "sweep interrupt/resume digest" `Slow
      test_sweep_interrupt_resume_digest;
    Alcotest.test_case "cli sweep resume validation" `Slow
      test_cli_sweep_resume_validation;
    Alcotest.test_case "cli serve hardening" `Slow test_cli_serve_hardening ]
