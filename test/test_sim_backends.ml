(* Differential testing of the three simulator backends (instruction tape,
   closure reference interpreter, bit-sliced batch), Tl_par pool semantics,
   and a smoke run of the benchmark gate. *)

open Tensorlib
open Signal

(* ---------------- random-netlist differential property ---------------- *)

(* Random circuits covering every node kind: mixed widths, signed compares
   and shifts, concat/repl/select, muxes with constant selects (exercising
   the tape's alias folding), registers with enable + clear, wire feedback
   and a read/write ram. *)
let random_circuit rng =
  let ri n = Random.State.int rng n in
  let x = input "x" 8 and y = input "y" 6 in
  let pool =
    ref
      [ x; y; const ~width:8 (ri 256); const ~width:6 (ri 64);
        const ~width:3 (ri 8); vdd; gnd ]
  in
  let push s = pool := s :: !pool in
  let pick () = List.nth !pool (ri (List.length !pool)) in
  let pick_w w =
    match List.filter (fun s -> width s = w) !pool with
    | [] -> const ~width:w (ri 1000)
    | l -> List.nth l (ri (List.length l))
  in
  (* registers with wire feedback *)
  let fb = wire 8 in
  let r =
    reg ~enable:(bit y 0) ~clear:(bit y 1) ~clear_to:(ri 256) ~init:(ri 256)
      fb
  in
  push r;
  push (reg (pick_w 6));
  (* read/write ram *)
  let m = ram ~size:8 ~width:8 ~init:(Array.init 8 (fun i -> i * 7 mod 256)) () in
  for _ = 1 to 30 do
    let a = pick () in
    let wa = width a in
    let b = pick_w wa in
    let s =
      match ri 16 with
      | 0 -> a +: b
      | 1 -> a -: b
      | 2 -> a *: b
      | 3 -> a &: b
      | 4 -> a |: b
      | 5 -> a ^: b
      | 6 -> not_ a
      | 7 -> eq a b
      | 8 -> ult a b
      | 9 -> slt a b
      | 10 -> shift_left a (ri wa)
      | 11 -> shift_right_l a (ri wa)
      | 12 -> shift_right_a a (ri wa)
      | 13 when wa + width b <= 20 -> concat [ a; b ]
      | 13 -> mux2 (pick_w 1) a b
      | 14 when wa <= 10 -> repl a (1 + ri 3)
      | 14 -> uresize a (wa + ri 4)
      | _ ->
        let lo = ri wa in
        select a ~hi:(lo + ri (wa - lo)) ~lo
    in
    if width s <= 62 then push s
  done;
  ram_write m ~we:(pick_w 1) ~addr:(pick_w 3) ~data:(pick_w 8);
  let rd = ram_read m (pick_w 3) in
  push rd;
  assign fb (pick_w 8);
  (* the explicit read output keeps the ram (and its write cone) reachable *)
  let outs =
    ("rr", rd) :: List.init 4 (fun k -> (Printf.sprintf "o%d" k, pick ()))
  in
  (Circuit.create ~name:"diff" ~outputs:outs, m)

let test_differential_random () =
  let rng = Random.State.make [| 42 |] in
  for case = 1 to 40 do
    let circ, m = random_circuit rng in
    let tape = Sim.create circ in
    let closure = Sim.create ~backend:`Closure circ in
    Alcotest.(check bool) "backends" true
      (Sim.backend tape = `Tape && Sim.backend closure = `Closure);
    for cyc = 1 to 15 do
      let xv = Random.State.int rng 256 and yv = Random.State.int rng 64 in
      (* an input can be unreachable from the sampled outputs *)
      let set s nm v = try Sim.set_input s nm v with Not_found -> () in
      set tape "x" xv;
      set tape "y" yv;
      set closure "x" xv;
      set closure "y" yv;
      Sim.settle tape;
      Sim.settle closure;
      (* every node (through any tape aliasing) must agree post-settle *)
      Array.iter
        (fun n ->
          let a = Sim.peek tape n and b = Sim.peek closure n in
          if a <> b then
            Alcotest.failf "case %d cycle %d: node %d (width %d): %d <> %d"
              case cyc n.id n.width a b)
        (Circuit.nodes circ);
      List.iter
        (fun (nm, _) ->
          if Sim.output tape nm <> Sim.output closure nm then
            Alcotest.failf "case %d cycle %d: output %s differs" case cyc nm)
        (Circuit.outputs circ);
      (* advance the clock edge (settle is idempotent, so cycle's second
         settle recomputes the same values before latching) *)
      Sim.cycle tape;
      Sim.cycle closure;
      if Sim.ram_contents tape m <> Sim.ram_contents closure m then
        Alcotest.failf "case %d cycle %d: ram contents diverged" case cyc
    done
  done

(* ---------------- batch backend: per-lane differential ----------------- *)

(* Every lane of a bit-sliced simulation must replay the scalar tape
   trace for that lane's stimuli: all nodes post-settle, all ram
   contents post-edge. *)
let test_batch_lane_differential () =
  let rng = Random.State.make [| 77 |] in
  for case = 1 to 8 do
    let circ, m = random_circuit rng in
    (* full width on even cases, a random narrower width on odd ones *)
    let lanes =
      if case mod 2 = 0 then Sim.max_lanes
      else 1 + Random.State.int rng Sim.max_lanes
    in
    let batch = Sim.create ~backend:`Batch ~lanes circ in
    Alcotest.(check int) "lane count" lanes (Sim.lanes batch);
    let scalars = Array.init lanes (fun _ -> Sim.create circ) in
    for cyc = 1 to 12 do
      let set s nm v = try Sim.set_input s nm v with Not_found -> () in
      let setl l nm v =
        try Sim.set_input_lane batch l nm v with Not_found -> ()
      in
      Array.iteri
        (fun l s ->
          let xv = Random.State.int rng 256
          and yv = Random.State.int rng 64 in
          set s "x" xv;
          set s "y" yv;
          setl l "x" xv;
          setl l "y" yv)
        scalars;
      Sim.settle batch;
      Array.iter Sim.settle scalars;
      Array.iteri
        (fun l s ->
          Array.iter
            (fun nd ->
              let a = Sim.peek_lane batch l nd and b = Sim.peek s nd in
              if a <> b then
                Alcotest.failf
                  "case %d cycle %d lane %d: node %d (width %d): batch %d \
                   <> tape %d"
                  case cyc l nd.id nd.width a b)
            (Circuit.nodes circ))
        scalars;
      Sim.cycle batch;
      Array.iter Sim.cycle scalars;
      Array.iteri
        (fun l s ->
          if Sim.ram_contents_lane batch l m <> Sim.ram_contents s m then
            Alcotest.failf "case %d cycle %d lane %d: ram diverged" case cyc
              l)
        scalars
    done
  done

(* ---------------- workload differential vs the golden executor -------- *)

let check_workload stmt dname rows cols () =
  let d = Search.find_design_exn stmt dname in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows ~cols d env in
  let golden = Exec.run stmt env in
  Alcotest.(check bool)
    (dname ^ " tape = golden") true
    (Dense.equal golden (Accel.execute acc));
  Alcotest.(check bool)
    (dname ^ " closure = golden") true
    (Dense.equal golden (Accel.execute ~backend:`Closure acc));
  Alcotest.(check bool)
    (dname ^ " batch = golden") true
    (Dense.equal golden (Accel.execute ~backend:`Batch acc))

(* One bit-sliced pass over several input environments must reproduce
   scalar [execute_with] on each, in order. *)
let test_execute_batch_matches_scalar () =
  let stmt = Workloads.gemm ~m:4 ~n:4 ~k:4 in
  let d = Search.find_design_exn stmt "MNK-SST" in
  let env0 = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:4 ~cols:4 d env0 in
  let envs = List.init 7 (fun k -> Exec.alloc_inputs ~seed:(100 + k) stmt) in
  let batched = Accel.execute_batch acc envs in
  Alcotest.(check int) "result per env" (List.length envs)
    (List.length batched);
  List.iter2
    (fun env out ->
      Alcotest.(check bool)
        "lane = scalar execute_with" true
        (Dense.equal out (Accel.execute_with acc env));
      Alcotest.(check bool)
        "lane = golden executor" true
        (Dense.equal out (Exec.run stmt env)))
    envs batched;
  Alcotest.check_raises "empty env list rejected"
    (Invalid_argument "Accel.execute_batch: no environments") (fun () ->
      ignore (Accel.execute_batch acc []))

let test_gemm_both =
  check_workload (Workloads.gemm ~m:4 ~n:4 ~k:5) "MNK-SST" 8 8

let test_conv_both =
  check_workload (Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3) "KCX-SST" 8 8

let test_depthwise_both =
  check_workload (Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3) "XYP-MMM"
    8 8

let test_mttkrp_both =
  check_workload (Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4) "IKL-UBBB" 8 8

(* ---------------- reset reproducibility ------------------------------- *)

let counter_trace backend =
  let fb = wire 8 in
  let c = reg fb in
  assign fb (c +: const ~width:8 1);
  let m = ram ~size:4 ~width:8 ~init:(Array.make 4 0) () in
  ram_write m ~we:vdd ~addr:(select c ~hi:1 ~lo:0) ~data:c;
  let circ =
    Circuit.create ~name:"ctr" ~outputs:[ ("c", c); ("r", ram_read m (select c ~hi:1 ~lo:0)) ]
  in
  let s = Sim.create ~backend circ in
  let run () =
    List.init 9 (fun _ ->
        Sim.cycle s;
        (Sim.output s "c", Sim.output s "r"))
  in
  let first = run () in
  Sim.reset s;
  let second = run () in
  (first, second)

let test_reset_reproducible () =
  List.iter
    (fun backend ->
      let first, second = counter_trace backend in
      Alcotest.(check (list (pair int int)))
        "trace replays after reset" first second)
    [ `Tape; `Closure; `Batch ]

(* Stale per-lane force masks must not survive [reset]: a reused batch
   simulator would otherwise leak stuck bits into the next campaign's
   trials (the scalar force array is cleared the same way). *)
let test_batch_reset_drops_forces () =
  let fb = wire 8 in
  let c = reg fb in
  assign fb (c +: const ~width:8 1);
  let circ = Circuit.create ~name:"ctr" ~outputs:[ ("c", c) ] in
  let s = Sim.create ~backend:`Batch ~lanes:4 circ in
  let run () =
    List.init 6 (fun _ ->
        Sim.cycle s;
        List.init 4 (fun l -> Sim.output_lane s l "c"))
  in
  let clean = run () in
  Sim.reset s;
  Sim.force_lane s 2 c ~and_mask:0 ~or_mask:0x55;
  let forced = run () in
  Alcotest.(check bool) "forced lane diverges" true (forced <> clean);
  (* the other lanes keep counting *)
  Alcotest.(check (list int))
    "lane 0 unaffected"
    (List.map (fun row -> List.nth row 0) clean)
    (List.map (fun row -> List.nth row 0) forced);
  Sim.reset s;
  Alcotest.(check (list (list int))) "reset drops per-lane forces" clean
    (run ());
  (* and the same through clear_forces on a live simulator *)
  Sim.reset s;
  Sim.force_lane s 1 c ~and_mask:0 ~or_mask:0xff;
  Sim.clear_forces s;
  Sim.reset s;
  Alcotest.(check (list (list int))) "clear_forces + reset is clean" clean
    (run ())

let test_output_not_found () =
  let s = Sim.create (Circuit.create ~name:"t" ~outputs:[ ("o", vdd) ]) in
  Alcotest.check_raises "unknown output" Not_found (fun () ->
      ignore (Sim.output s "nope"))

(* ---------------- Tl_par pool semantics ------------------------------- *)

let test_par_deterministic () =
  let xs = List.init 100 Fun.id in
  let f i = string_of_int (i * i + 1) in
  let seq = List.map f xs in
  let p1 = Par.map ~domains:4 f xs in
  let p2 = Par.map ~domains:4 f xs in
  Alcotest.(check (list string)) "par = seq (ordered)" seq p1;
  Alcotest.(check (list string)) "two runs identical" p1 p2;
  Alcotest.(check (list string))
    "mapi indices line up" seq
    (Par.mapi ~domains:4 (fun i _ -> f i) xs)

let test_par_exception () =
  match
    Par.map ~domains:4
      (fun i -> if i mod 7 = 3 then failwith (string_of_int i) else i)
      (List.init 50 Fun.id)
  with
  | exception Failure msg ->
    Alcotest.(check string) "lowest failing index wins" "3" msg
  | _ -> Alcotest.fail "expected Failure"

let test_par_explore_deterministic () =
  let gemm = Workloads.gemm ~m:16 ~n:16 ~k:16 in
  let seq = Explore.explore ~limit:6 ~domains:1 gemm in
  let par = Explore.explore ~limit:6 ~domains:4 gemm in
  Alcotest.(check int) "same count" (List.length seq) (List.length par);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        "same design order, same numbers" true
        (a.Explore.perf.Perf.cycles = b.Explore.perf.Perf.cycles
        && a.Explore.gops_per_watt = b.Explore.gops_per_watt))
    seq par

(* ---------------- benchmark gate smoke -------------------------------- *)

let test_bench_quick_smoke () =
  let exe = "../bench/main.exe" in
  if Sys.file_exists exe then begin
    let code =
      Sys.command (Filename.quote_command exe [ "bench-quick" ] ^ " > /dev/null 2>&1")
    in
    Alcotest.(check int) "bench-quick exits 0" 0 code;
    Alcotest.(check bool) "BENCH_sim.json written" true
      (Sys.file_exists "BENCH_sim.json");
    let ic = open_in "BENCH_sim.json" in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    let contains needle =
      let nl = String.length needle and bl = String.length body in
      let rec go i = i + nl <= bl && (String.sub body i nl = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun needle ->
        Alcotest.(check bool) (needle ^ " present") true (contains needle))
      [ "tensorlib-bench-sim/2"; "\"domains\""; "\"sim\"";
        "\"tape_cycles_per_sec\""; "\"speedup\""; "\"dse\"";
        "\"batch_trials_per_sec\""; "\"batch_speedup_w62\"";
        "\"packed_fraction\"" ]
  end

let suite =
  [ Alcotest.test_case "tape vs closure: random netlists" `Quick
      test_differential_random;
    Alcotest.test_case "batch lanes vs tape: random netlists" `Quick
      test_batch_lane_differential;
    Alcotest.test_case "gemm all backends = golden" `Quick test_gemm_both;
    Alcotest.test_case "conv2d all backends = golden" `Quick test_conv_both;
    Alcotest.test_case "depthwise all backends = golden" `Quick
      test_depthwise_both;
    Alcotest.test_case "mttkrp all backends = golden" `Quick
      test_mttkrp_both;
    Alcotest.test_case "execute_batch = scalar execute_with" `Quick
      test_execute_batch_matches_scalar;
    Alcotest.test_case "reset reproduces the trace" `Quick
      test_reset_reproducible;
    Alcotest.test_case "batch reset drops per-lane forces" `Quick
      test_batch_reset_drops_forces;
    Alcotest.test_case "output raises Not_found" `Quick
      test_output_not_found;
    Alcotest.test_case "par map deterministic" `Quick test_par_deterministic;
    Alcotest.test_case "par exception order" `Quick test_par_exception;
    Alcotest.test_case "par explore deterministic" `Quick
      test_par_explore_deterministic;
    Alcotest.test_case "bench-quick gate smoke" `Slow
      test_bench_quick_smoke ]
