(* Persistent design store, the whole-network sweep engine, the exact
   perf-result codec, signature-key stability, and the Tl_par cache
   counter exactness the store's stats plumbing relies on. *)

open Tensorlib

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  path

(* ---------------- JSON ---------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("id", Json.Num 3.);
        ("name", Json.Str "tab\there \"quoted\" \\ slash");
        ("ok", Json.Bool true);
        ("none", Json.Null);
        ("xs", Json.List [ Json.Num 1.5; Json.Str "x"; Json.Bool false ]) ]
  in
  (match Json.parse (Json.to_string v) with
   | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
   | Error m -> Alcotest.fail m);
  (* rendering never emits newlines: one request/response per line *)
  Alcotest.(check bool) "single line" false
    (String.contains (Json.to_string v) '\n')

let test_json_errors () =
  let bad s =
    match Json.parse s with Ok _ -> false | Error _ -> true
  in
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects " ^ s) true (bad s))
    [ "{"; "[1,"; "\"unterminated"; "{\"a\" 1}"; "1 2"; "nul"; "" ];
  match Json.parse "  {\"a\": [1, 2], \"b\": \"x\"}  " with
  | Error m -> Alcotest.fail m
  | Ok j ->
    Alcotest.(check (option string)) "member b" (Some "x")
      (Json.mem_string j "b");
    Alcotest.(check (option int)) "missing" None (Json.mem_int j "c")

(* ---------------- store basics ---------------- *)

let test_store_memory () =
  let st = Store.open_store () in
  Alcotest.(check (option string)) "miss" None (Store.find st "k1");
  Store.put st "k1" "v1";
  Alcotest.(check (option string)) "hit" (Some "v1") (Store.find st "k1");
  let v = Store.find_or_add st "k2" (fun () -> "v2") in
  Alcotest.(check string) "computed" "v2" v;
  let s = Store.stats st in
  Alcotest.(check int) "hits" 1 s.Par.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Par.Cache.misses;
  Alcotest.(check int) "entries" 2 s.Par.Cache.entries

let test_store_persistence () =
  let root = temp_dir "tlstore" in
  let st = Store.open_store ~root () in
  Store.put st "key one" "payload\nwith\nnewlines\tand tabs";
  Store.put st "key two" "";
  Alcotest.(check (option string)) "same process"
    (Some "payload\nwith\nnewlines\tand tabs")
    (Store.find st "key one");
  (* a second store over the same root sees the entries (fresh index) *)
  let st2 = Store.open_store ~root () in
  Alcotest.(check (option string)) "reopened"
    (Some "payload\nwith\nnewlines\tand tabs")
    (Store.find st2 "key one");
  Alcotest.(check (option string)) "empty payload ok" (Some "")
    (Store.find st2 "key two");
  (* reopen with the index file deleted: rebuilt by scanning entries/ *)
  Sys.remove (Filename.concat root "index.tsv");
  let st3 = Store.open_store ~root () in
  Alcotest.(check int) "index rebuilt" 2 (Store.stats st3).Par.Cache.entries;
  (* cross-process visibility: an entry written by another store instance
     is found even though it is not in this instance's index *)
  Store.put st3 "key three" "v3";
  Alcotest.(check (option string)) "cross-instance" (Some "v3")
    (Store.find st2 "key three")

let test_store_corruption () =
  let root = temp_dir "tlstore" in
  let st = Store.open_store ~root () in
  Store.put st "victim" "some serialized payload";
  let path =
    Filename.concat
      (Filename.concat root "entries")
      (Store.digest_hex "victim")
  in
  Alcotest.(check bool) "entry file exists" true (Sys.file_exists path);
  let original =
    let ic = open_in_bin path in
    let c = really_input_string ic (in_channel_length ic) in
    close_in ic;
    c
  in
  let write content =
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc
  in
  (* truncation, payload corruption, garbage, empty: all degrade to a
     miss, never an exception *)
  write (String.sub original 0 (String.length original / 2));
  Alcotest.(check (option string)) "truncated" None (Store.find st "victim");
  write (String.map (fun c -> if c = 'p' then 'q' else c) original);
  Alcotest.(check (option string)) "corrupted" None (Store.find st "victim");
  write "total garbage";
  Alcotest.(check (option string)) "garbage" None (Store.find st "victim");
  write "";
  Alcotest.(check (option string)) "empty" None (Store.find st "victim");
  (* and a re-put heals it *)
  write original;
  Alcotest.(check (option string)) "restored" (Some "some serialized payload")
    (Store.find st "victim")

let test_store_eviction () =
  let root = temp_dir "tlstore" in
  let st = Store.open_store ~max_entries:3 ~root () in
  for i = 1 to 6 do
    Store.put st (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i)
  done;
  let s = Store.stats st in
  Alcotest.(check bool) "capped" true (s.Par.Cache.entries <= 3);
  Alcotest.(check bool) "evictions counted" true (s.Par.Cache.evictions >= 3);
  (* the store stays functional after evicting *)
  Store.put st "k7" "v7";
  Alcotest.(check (option string)) "post-evict put" (Some "v7")
    (Store.find st "k7")

let test_store_concurrent_writers () =
  (* many domains hammer the same keys; first-insertion-wins semantics
     and atomic rename mean no crash and no torn payload *)
  let root = temp_dir "tlstore" in
  let st = Store.open_store ~root () in
  let results =
    Par.map ~domains:4 ~label:"store-race"
      (fun i ->
        let key = Printf.sprintf "shared-%d" (i mod 3) in
        Store.find_or_add st key (fun () ->
            Printf.sprintf "payload-%d" (i mod 3)))
      (List.init 64 Fun.id)
  in
  List.iteri
    (fun i v ->
      Alcotest.(check string)
        (Printf.sprintf "item %d" i)
        (Printf.sprintf "payload-%d" (i mod 3))
        v)
    results;
  (* every entry on disk verifies *)
  for k = 0 to 2 do
    Alcotest.(check (option string))
      (Printf.sprintf "final shared-%d" k)
      (Some (Printf.sprintf "payload-%d" k))
      (Store.find st (Printf.sprintf "shared-%d" k))
  done

(* ---------------- Tl_par.Cache counter exactness ---------------- *)

let test_cache_counters_parallel () =
  (* hits + misses must equal the exact number of find_or_add calls even
     under a multi-domain pool (counters are atomic), and entries must
     equal the number of distinct keys *)
  let c = Par.Cache.create ~name:"test.counters" () in
  let calls = 200 and distinct = 23 in
  ignore
    (Par.map ~domains:4 ~label:"counter-race"
       (fun i ->
         Par.Cache.find_or_add c
           (Printf.sprintf "key-%d" (i mod distinct))
           (fun () -> i mod distinct))
       (List.init calls Fun.id));
  let s = Par.Cache.stats c in
  Alcotest.(check int) "hits+misses exact" calls
    (s.Par.Cache.hits + s.Par.Cache.misses);
  Alcotest.(check int) "entries = distinct keys" distinct s.Par.Cache.entries;
  Alcotest.(check bool) "misses cover every key" true
    (s.Par.Cache.misses >= distinct);
  Alcotest.(check int) "in-memory caches never evict" 0 s.Par.Cache.evictions

(* ---------------- signature key stability ---------------- *)

let test_signature_stability () =
  (* golden values: these strings are persisted in store entries, so any
     change to them is a format break that must be caught and versioned *)
  Alcotest.(check string) "stmt_fingerprint golden"
    "GEMM{m=4 n=4 k=4 A[,1,0,0;,0,0,1;] B[,0,1,0;,0,0,1;] C[,1,0,0;,0,1,0;]}"
    (Signature.stmt_fingerprint (Workloads.gemm ~m:4 ~n:4 ~k:4));
  Alcotest.(check string) "key_digest golden"
    "900150983cd24fb0d6963f7d28e17f72"
    (Signature.key_digest "abc");
  (* same fingerprint for a rebuilt statement (stability within and, by
     the pure-text construction, across processes) *)
  Alcotest.(check string) "rebuild identical"
    (Signature.stmt_fingerprint (Workloads.conv2d ~k:4 ~c:4 ~y:6 ~x:6 ~p:3 ~q:3))
    (Signature.stmt_fingerprint (Workloads.conv2d ~k:4 ~c:4 ~y:6 ~x:6 ~p:3 ~q:3))

let test_signature_no_collisions () =
  (* distinct statements with identical iteration shapes must not share
     keys: the access matrices (and names) separate them *)
  let fp = Signature.stmt_fingerprint in
  let gemm = Workloads.gemm ~m:8 ~n:8 ~k:8 in
  let bgemv = Workloads.batched_gemv ~m:8 ~n:8 ~k:8 in
  Alcotest.(check bool) "gemm vs batched-gemv" false (fp gemm = fp bgemv);
  let conv = Workloads.conv2d ~k:4 ~c:4 ~y:6 ~x:6 ~p:3 ~q:3 in
  let strided = Workloads.conv2d_strided ~stride:2 ~k:4 ~c:4 ~y:6 ~x:6 ~p:3 ~q:3 in
  Alcotest.(check bool) "conv vs strided" false (fp conv = fp strided);
  let dw = Workloads.depthwise_conv ~k:4 ~y:6 ~x:6 ~p:3 ~q:3 in
  let dw2 = Workloads.depthwise_conv ~k:4 ~y:6 ~x:6 ~p:3 ~q:5 in
  Alcotest.(check bool) "extent change" false (fp dw = fp dw2);
  (* config changes separate full cache keys for one design *)
  let d = Search.find_design_exn gemm "MNK-SST" in
  let c1 = Perf.default_config in
  let c2 = { c1 with Perf.rows = 8 } in
  Alcotest.(check bool) "config in key" false
    (Perf.cache_key ~config:c1 d = Perf.cache_key ~config:c2 d);
  Alcotest.(check string) "cache_key deterministic"
    (Perf.cache_key ~config:c1 d)
    (Perf.cache_key ~config:c1 d)

(* ---------------- perf result codec ---------------- *)

let test_perf_codec_roundtrip () =
  let stmt = Workloads.conv2d ~k:4 ~c:4 ~y:6 ~x:6 ~p:3 ~q:3 in
  let checked = ref 0 in
  List.iter
    (fun (_, d) ->
      match Perf.evaluate d with
      | exception Invalid_argument _ -> ()
      | r -> (
        incr checked;
        match Perf.result_of_string (Perf.result_to_string r) with
        | None -> Alcotest.fail "codec rejected its own output"
        | Some r' ->
          (* structural equality: every float bit-identical *)
          Alcotest.(check bool) "bit-exact roundtrip" true (r = r')))
    (List.filteri (fun i _ -> i < 8) (Search.all_designs stmt));
  Alcotest.(check bool) "checked some" true (!checked >= 4)

let test_perf_codec_rejects () =
  let r = Perf.evaluate (Search.find_design_exn (Workloads.gemm ~m:8 ~n:8 ~k:8) "MNK-SST") in
  let good = Perf.result_to_string r in
  let bad s =
    Alcotest.(check bool) ("rejects " ^ String.sub s 0 (min 20 (String.length s)))
      true
      (Perf.result_of_string s = None)
  in
  bad "";
  bad "tlperf/0\tx";
  bad (String.sub good 0 (String.length good / 2));
  bad (good ^ "\textra-field")

(* ---------------- network sweep ---------------- *)

(* a fast synthetic network: small GEMM spaces, one duplicated shape *)
let fast_net () =
  [ ("a", Workloads.gemm ~m:16 ~n:16 ~k:16);
    ("b", Workloads.gemm ~m:16 ~n:16 ~k:16);
    ("c", Workloads.batched_gemv ~m:4 ~n:8 ~k:8) ]

let test_network_dedup_and_warm () =
  let root = temp_dir "tlstore" in
  let store = Store.open_store ~root () in
  let layers = fast_net () in
  let r1 = Network.sweep ~per_shape_limit:40 ~store ~name:"fast" layers in
  Alcotest.(check int) "layers" 3 (List.length r1.Network.r_layers);
  Alcotest.(check int) "deduped shapes" 2 r1.Network.r_unique_shapes;
  Alcotest.(check int) "all cold" 0 r1.Network.r_hits;
  let la, lb =
    match r1.Network.r_layers with
    | [ a; b; _ ] -> (a, b)
    | _ -> Alcotest.fail "expected 3 layers"
  in
  Alcotest.(check string) "shared key" la.Network.l_key lb.Network.l_key;
  Alcotest.(check bool) "winner exists" true (la.Network.l_best <> None);
  (* warm run from a fresh store handle over the same root: everything
     served from disk, bit-identical *)
  Par.Cache.clear_all ();
  let store2 = Store.open_store ~root () in
  let r2 = Network.sweep ~per_shape_limit:40 ~store:store2 ~name:"fast" layers in
  Alcotest.(check int) "all warm" r2.Network.r_unique_shapes r2.Network.r_hits;
  Alcotest.(check (float 0.0)) "hit rate one" 1.0 r2.Network.r_hit_rate;
  Alcotest.(check string) "digest stable" r1.Network.r_digest r2.Network.r_digest;
  let frontiers (r : Network.report) =
    List.map (fun l -> l.Network.l_frontier) r.Network.r_layers
  in
  Alcotest.(check bool) "frontiers bit-identical" true
    (frontiers r1 = frontiers r2);
  (* the point cap is part of the key: a different cap is a different
     design question, never a false hit *)
  let r3 = Network.sweep ~per_shape_limit:10 ~store:store2 ~name:"fast" layers in
  Alcotest.(check int) "different limit misses" 0 r3.Network.r_hits

let test_network_pool_width_independent () =
  (* identical results whatever the pool width: fresh stores per width,
     digest + totals compared *)
  let layers = fast_net () in
  let run domains =
    let store = Store.open_store ~root:(temp_dir "tlstore") () in
    Par.Cache.clear_all ();
    Network.sweep ~domains ~per_shape_limit:40 ~store ~name:"fast" layers
  in
  let r1 = run 1 and r3 = run 3 in
  Alcotest.(check string) "digest" r1.Network.r_digest r3.Network.r_digest;
  Alcotest.(check bool) "totals bit-identical" true
    ((r1.Network.r_total_cycles, r1.Network.r_total_area,
      r1.Network.r_total_power)
    = (r3.Network.r_total_cycles, r3.Network.r_total_area,
       r3.Network.r_total_power))

let test_network_payload_codec () =
  let pts =
    Network.evaluate_shape ~config:Perf.default_config ~per_shape_limit:12
      (Workloads.gemm ~m:16 ~n:16 ~k:16)
  in
  Alcotest.(check bool) "some points" true (List.length pts > 0);
  let payload = Network.encode_points pts in
  (match Network.decode_points payload with
   | None -> Alcotest.fail "decode of own payload failed"
   | Some pts' -> Alcotest.(check bool) "bit-exact" true (pts = pts'));
  Alcotest.(check bool) "truncated payload rejected" true
    (Network.decode_points (String.sub payload 0 (String.length payload / 2))
    = None);
  Alcotest.(check bool) "garbage rejected" true
    (Network.decode_points "tlnetpts/1 nonsense\n" = None)

let test_network_tables () =
  let nets = Network.networks () in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true
        (List.mem_assoc name nets))
    [ "resnet18"; "bert-base"; "tiny" ];
  Alcotest.(check int) "resnet18 depth" 21
    (List.length (List.assoc "resnet18" nets));
  Alcotest.(check int) "bert-base layers" 8
    (List.length (List.assoc "bert-base" nets));
  (* dedup counts promised in the docs *)
  let unique layers =
    List.sort_uniq compare
      (List.map (fun (_, s) -> Signature.stmt_fingerprint s) layers)
  in
  Alcotest.(check int) "resnet18 unique shapes" 12
    (List.length (unique (List.assoc "resnet18" nets)));
  Alcotest.(check int) "bert unique shapes" 5
    (List.length (unique (List.assoc "bert-base" nets)))

(* ---------------- CLI validation ---------------- *)

(* dune runtest runs the binary from _build/default/test/; a direct
   `dune exec test/test_main.exe` runs from the project root *)
let cli =
  if Sys.file_exists "../bin/tensorlib_cli.exe" then
    "../bin/tensorlib_cli.exe"
  else "_build/default/bin/tensorlib_cli.exe"

let run_cli args =
  let out = Filename.temp_file "tlcli" ".out" in
  let err = Filename.temp_file "tlcli" ".err" in
  let rc =
    Sys.command
      (Printf.sprintf "%s %s > %s 2> %s" (Filename.quote cli) args
         (Filename.quote out) (Filename.quote err))
  in
  let read path =
    let ic = open_in path in
    let c = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    c
  in
  (rc, read out, read err)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_cli_sweep_validation () =
  (* unknown network: exit 2, suggestion on stderr *)
  let rc, _, err = run_cli "sweep --network resnet19 --limit 1" in
  Alcotest.(check int) "unknown network exit" 2 rc;
  Alcotest.(check bool) "suggests resnet18" true
    (contains err "did you mean \"resnet18\"");
  (* --store parent must exist: exit 2 *)
  let rc, _, err =
    run_cli "sweep --network tiny --store /nonexistent-parent/store --limit 1"
  in
  Alcotest.(check int) "bad store parent exit" 2 rc;
  Alcotest.(check bool) "mentions parent" true (contains err "parent");
  (* bad limit: exit 2 *)
  let rc, _, _ = run_cli "sweep --network tiny --limit 0" in
  Alcotest.(check int) "bad limit exit" 2 rc

let test_cli_sweep_and_serve () =
  let root = temp_dir "tlstore" in
  let rc, out, _ =
    run_cli
      (Printf.sprintf "sweep --network tiny --store %s --limit 8 --json"
         (Filename.quote root))
  in
  Alcotest.(check int) "sweep exit" 0 rc;
  let j =
    match Json.parse (String.trim out) with
    | Ok j -> j
    | Error m -> Alcotest.fail ("sweep JSON: " ^ m)
  in
  Alcotest.(check (option string)) "schema" (Some "tensorlib-sweep/1")
    (Json.mem_string j "schema");
  Alcotest.(check (option (float 0.0))) "cold misses" (Some 0.)
    (Json.mem_number j "hit_rate");
  let digest = Option.get (Json.mem_string j "digest") in
  (* serve from the warm store: same digest, 100% hits, and a malformed
     line answered without killing the loop *)
  let requests = Filename.temp_file "tlreq" ".jsonl" in
  let oc = open_out requests in
  output_string oc "{\"id\": 1, \"network\": \"tiny\"}\nnot json\n";
  output_string oc "{\"id\": 2, \"network\": \"bogus\"}\n";
  close_out oc;
  let out_file = Filename.temp_file "tlserve" ".out" in
  let rc =
    Sys.command
      (Printf.sprintf "%s serve --store %s --limit 8 < %s > %s 2> /dev/null"
         (Filename.quote cli) (Filename.quote root)
         (Filename.quote requests) (Filename.quote out_file))
  in
  Alcotest.(check int) "serve exit" 0 rc;
  let ic = open_in out_file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove requests;
  Sys.remove out_file;
  match List.rev !lines with
  | [ l1; l2; l3 ] ->
    (match Json.parse l1 with
     | Error m -> Alcotest.fail m
     | Ok j1 ->
       Alcotest.(check (option (float 0.0))) "request hit rate" (Some 1.)
         (Json.mem_number j1 "store_hit_rate");
       let report = Option.get (Json.member "report" j1) in
       Alcotest.(check (option string)) "served digest matches sweep"
         (Some digest)
         (Json.mem_string report "digest"));
    (match Json.parse l2 with
     | Error m -> Alcotest.fail m
     | Ok j2 ->
       Alcotest.(check (option string)) "parse error reported" None
         (Json.mem_string j2 "report");
       Alcotest.(check bool) "not ok" true
         (Json.member "ok" j2 = Some (Json.Bool false)));
    (match Json.parse l3 with
     | Error m -> Alcotest.fail m
     | Ok j3 ->
       Alcotest.(check bool) "unknown network not ok" true
         (Json.member "ok" j3 = Some (Json.Bool false)))
  | ls ->
    Alcotest.fail
      (Printf.sprintf "expected 3 response lines, got %d" (List.length ls))

let suite =
  [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "store in-memory" `Quick test_store_memory;
    Alcotest.test_case "store persistence" `Quick test_store_persistence;
    Alcotest.test_case "store corruption -> miss" `Quick test_store_corruption;
    Alcotest.test_case "store eviction" `Quick test_store_eviction;
    Alcotest.test_case "store concurrent writers" `Quick
      test_store_concurrent_writers;
    Alcotest.test_case "cache counters exact under domains" `Quick
      test_cache_counters_parallel;
    Alcotest.test_case "signature stability goldens" `Quick
      test_signature_stability;
    Alcotest.test_case "signature no collisions" `Quick
      test_signature_no_collisions;
    Alcotest.test_case "perf codec roundtrip" `Quick test_perf_codec_roundtrip;
    Alcotest.test_case "perf codec rejects" `Quick test_perf_codec_rejects;
    Alcotest.test_case "network dedup + warm store" `Quick
      test_network_dedup_and_warm;
    Alcotest.test_case "network pool-width independent" `Quick
      test_network_pool_width_independent;
    Alcotest.test_case "network payload codec" `Quick
      test_network_payload_codec;
    Alcotest.test_case "network tables" `Quick test_network_tables;
    Alcotest.test_case "cli sweep validation" `Quick test_cli_sweep_validation;
    Alcotest.test_case "cli sweep + serve" `Slow test_cli_sweep_and_serve ]
