(* Space-time transformation analysis: the paper's §II, §IV and Table I. *)

open Tensorlib

let gemm = Workloads.gemm ~m:4 ~n:4 ~k:4

let fig1b =
  (* Fig. 1(b): (i,j,k) -> (i, j, i+j+k) *)
  Transform.by_names gemm [ "m"; "n"; "k" ]
    ~matrix:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 1; 1 ] ]

let test_transform_validity () =
  Alcotest.check_raises "singular matrix rejected"
    (Invalid_argument "Transform.v: STT matrix must be full rank (one-to-one)")
    (fun () ->
      ignore
        (Transform.by_names gemm [ "m"; "n"; "k" ]
           ~matrix:[ [ 1; 0; 0 ]; [ 1; 0; 0 ]; [ 0; 0; 1 ] ]));
  Alcotest.check_raises "duplicate selection"
    (Invalid_argument "Transform.v: duplicate selected iterator") (fun () ->
      ignore
        (Transform.v gemm ~selected:[| 0; 0; 1 |]
           ~matrix:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ]))

let test_fig1b_mapping () =
  (* paper: i=1, j=2, k=3 executes at PE (1,2) at cycle 6 *)
  let p, t = Transform.apply fig1b [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "PE" [| 1; 2 |] p;
  Alcotest.(check int) "time" 6 t;
  (* inverse recovers the iteration *)
  let x = Transform.inverse_apply fig1b [| 1; 2 |] 6 in
  Alcotest.(check (array int)) "inverse" [| 1; 2; 3 |] (Vec.to_integer x |> fun _ ->
    Array.map Rat.to_int x)

let test_fig1b_dataflows () =
  (* paper §IV: A[i,k] under Fig 1(b) is systolic with (dp,dt) = (0,1,1) *)
  let d = Design.analyze fig1b in
  (match (Design.find_tensor d "A").Design.dataflow with
   | Dataflow.Systolic { dp; dt } ->
     Alcotest.(check (array int)) "A dp" [| 0; 1 |] dp;
     Alcotest.(check int) "A dt" 1 dt
   | df -> Alcotest.failf "A: expected systolic, got %s" (Dataflow.to_string df));
  (match (Design.find_tensor d "B").Design.dataflow with
   | Dataflow.Systolic { dp; dt } ->
     Alcotest.(check (array int)) "B dp" [| 1; 0 |] dp;
     Alcotest.(check int) "B dt" 1 dt
   | df -> Alcotest.failf "B: expected systolic, got %s" (Dataflow.to_string df));
  (match (Design.find_tensor d "C").Design.dataflow with
   | Dataflow.Stationary { dt } -> Alcotest.(check int) "C dt" 1 dt
   | df ->
     Alcotest.failf "C: expected stationary, got %s" (Dataflow.to_string df));
  Alcotest.(check string) "name" "MNK-SST" d.Design.name

let test_multicast_classification () =
  (* space = (n,k), time = m: A[m,k] reuse dir n -> spatial => multicast *)
  let t =
    Transform.by_names gemm [ "m"; "n"; "k" ]
      ~matrix:[ [ 0; 1; 0 ]; [ 0; 0; 1 ]; [ 1; 0; 0 ] ]
  in
  let d = Design.analyze t in
  (match (Design.find_tensor d "A").Design.dataflow with
   | Dataflow.Multicast { dp } ->
     Alcotest.(check (array int)) "A multicast dir" [| 1; 0 |] dp
   | df -> Alcotest.failf "A: expected multicast, got %s" (Dataflow.to_string df));
  (* output C has reuse dir k which is spatial too: reduction tree *)
  (match (Design.find_tensor d "C").Design.dataflow with
   | Dataflow.Multicast { dp } ->
     Alcotest.(check (array int)) "C tree dir" [| 0; 1 |] dp
   | df -> Alcotest.failf "C: expected multicast, got %s" (Dataflow.to_string df));
  Alcotest.(check string) "letters" "MTM" (Design.letters d)

let test_unicast_classification () =
  (* Batched-GEMV A[m,k,n] depends on all three iterators: rank-0 reuse *)
  let bg = Workloads.batched_gemv ~m:4 ~n:4 ~k:4 in
  let t =
    Transform.by_names bg [ "m"; "n"; "k" ]
      ~matrix:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ]
  in
  let d = Design.analyze t in
  Alcotest.(check bool) "A unicast" true
    ((Design.find_tensor d "A").Design.dataflow = Dataflow.Unicast)

let test_2d_reuse_classification () =
  (* Conv2D weight B[k,c,p,q] under XYP selection has a 2-D reuse plane *)
  let conv = Workloads.conv2d ~k:4 ~c:4 ~y:6 ~x:6 ~p:3 ~q:3 in
  let t =
    Transform.by_names conv [ "x"; "y"; "p" ]
      ~matrix:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ]
  in
  let d = Design.analyze t in
  let b = (Design.find_tensor d "B").Design.dataflow in
  Alcotest.(check int) "B reuse is 2-D" 2 (Dataflow.subspace_dim b);
  Alcotest.(check char) "B letter" 'B' (Dataflow.letter b)

let test_broadcast_classification () =
  (* both null directions spatial: element broadcast to a plane *)
  let dw = Workloads.depthwise_conv ~k:4 ~y:6 ~x:6 ~p:3 ~q:3 in
  (* select (x,y,p); B[k,p,q] restricted depends only on p; choose T with
     x,y spatial and p temporal-but... here x->p1, y->p0, p->t so the reuse
     plane {e_x,e_y} maps to {(0,1,0),(1,0,0)}: vertical to t => broadcast *)
  let t =
    Transform.by_names dw [ "x"; "y"; "p" ]
      ~matrix:[ [ 0; 1; 0 ]; [ 1; 0; 0 ]; [ 0; 0; 1 ] ]
  in
  let d = Design.analyze t in
  (match (Design.find_tensor d "B").Design.dataflow with
   | Dataflow.Reuse2d Dataflow.Broadcast -> ()
   | df -> Alcotest.failf "expected broadcast, got %s" (Dataflow.to_string df))

let test_multicast_stationary_classification () =
  (* GEMM with B[n,k] ignoring the selected m loop... use depthwise: plane
     containing the time axis *)
  let dw = Workloads.depthwise_conv ~k:4 ~y:6 ~x:6 ~p:3 ~q:3 in
  (* select (x,y,p); T: p0=y+p, p1=p, t=x.  B depends on p only; null plane
     {e_x, e_y} maps to {(0,0,1)=e_t, (1,0,0)}: contains the t axis *)
  let t =
    Transform.by_names dw [ "x"; "y"; "p" ]
      ~matrix:[ [ 0; 1; 1 ]; [ 0; 0; 1 ]; [ 1; 0; 0 ] ]
  in
  let d = Design.analyze t in
  (match (Design.find_tensor d "B").Design.dataflow with
   | Dataflow.Reuse2d (Dataflow.Multicast_stationary { multicast }) ->
     Alcotest.(check (array int)) "multicast dir" [| 1; 0 |] multicast
   | df ->
     Alcotest.failf "expected multicast+stationary, got %s"
       (Dataflow.to_string df))

let test_projector_matches_nullspace () =
  (* Eq. 3 projector image = T . null(A) for every GEMM tensor *)
  let d = Design.analyze fig1b in
  List.iter
    (fun (ti : Design.tensor_info) ->
      let p = Reuse.projector fig1b ti.Design.access in
      let basis = Reuse.reuse_basis fig1b ti.Design.access in
      (* projector is idempotent *)
      Alcotest.(check bool) "P^2 = P" true (Mat.equal (Mat.mul p p) p);
      (* image of the projector has the same rank as the reuse space *)
      Alcotest.(check int)
        ("rank for " ^ ti.Design.access.Access.tensor)
        (List.length basis) (Mat.rank p);
      (* each basis vector is fixed by the projector *)
      List.iter
        (fun v ->
          Alcotest.(check bool) "P v = v" true
            (Vec.equal (Mat.mul_vec p v) v))
        basis)
    d.Design.tensors

let test_time_bounds () =
  let lo, hi = Transform.time_bounds fig1b in
  Alcotest.(check int) "min time" 0 lo;
  Alcotest.(check int) "max time" 9 hi;
  (* negative schedule coefficients give a negative lower bound *)
  let t =
    Transform.by_names gemm [ "m"; "n"; "k" ]
      ~matrix:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ -1; 0; 1 ] ]
  in
  let lo, hi = Transform.time_bounds t in
  Alcotest.(check int) "min time negative" (-3) lo;
  Alcotest.(check int) "max time" 3 hi

let test_space_footprint () =
  let fp = Transform.space_footprint fig1b in
  Alcotest.(check int) "footprint 4x4" 16 (Hashtbl.length fp)

let test_selection_label () =
  let conv = Workloads.conv2d ~k:4 ~c:4 ~y:6 ~x:6 ~p:3 ~q:3 in
  let t =
    Transform.by_names conv [ "k"; "c"; "x" ]
      ~matrix:[ [ 1; 0; 0 ]; [ 0; 0; 1 ]; [ 0; 1; 0 ] ]
  in
  Alcotest.(check string) "label" "KCX" (Transform.selection_label t)

let test_search_named_designs () =
  List.iter
    (fun name ->
      match Search.find_design gemm name with
      | Some d -> Alcotest.(check string) name name d.Design.name
      | None -> Alcotest.failf "%s not found" name)
    [ "MNK-SST"; "MNK-STS"; "MNK-MTM"; "MNK-MMT"; "MNK-SSS" ];
  (* unrealisable combination: GEMM cannot be all-stationary *)
  Alcotest.(check bool) "TTT unrealisable" true
    (Search.find_design gemm "MNK-TTT" = None)

let test_search_loose_matching () =
  (* Conv2D XYP-MST relies on loose matching of 2-D reuse letters *)
  let conv = Workloads.conv2d ~k:4 ~c:4 ~y:6 ~x:6 ~p:3 ~q:3 in
  match Search.find_design conv "XYP-MST" with
  | Some d ->
    Alcotest.(check bool) "B tensor has 2-D reuse" true
      (Dataflow.subspace_dim (Design.find_tensor d "B").Design.dataflow >= 2)
  | None -> Alcotest.fail "XYP-MST should resolve loosely"

let test_all_designs_gemm () =
  let all = Search.all_designs ~selection:[| 0; 1; 2 |] gemm in
  Alcotest.(check int) "19 letter-distinct GEMM dataflows" 19
    (List.length all);
  (* no design name repeats *)
  let names = List.map fst all in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_candidate_matrices () =
  let ms = Search.candidate_matrices ~n:2 in
  (* full-rank 2x2 matrices over {-1,0,1}: 48 of them *)
  Alcotest.(check int) "2x2 count" 48 (List.length ms);
  List.iter
    (fun m ->
      let det = Mat.det (Mat.of_int_rows m) in
      Alcotest.(check bool) "full rank" false (Rat.is_zero det))
    ms

let test_netlist_supported () =
  let d = Design.analyze fig1b in
  Alcotest.(check bool) "SST supported" true (Design.netlist_supported d)

(* ---------- properties ---------- *)

let arbitrary_transform =
  let gen =
    QCheck.Gen.(
      let cell = int_range (-1) 1 in
      let rec full_rank () =
        array_size (return 9) cell >>= fun cells ->
        let m = List.init 3 (fun i -> List.init 3 (fun j -> cells.((i * 3) + j))) in
        if Rat.is_zero (Mat.det (Mat.of_int_rows m)) then full_rank ()
        else return m
      in
      full_rank ())
  in
  QCheck.make
    ~print:(fun m ->
      String.concat ";"
        (List.map (fun r -> String.concat "," (List.map string_of_int r)) m))
    gen

(* step one reuse vector in space-time: must land on the same element *)
let check_step dp dt access t ext points =
  List.for_all
    (fun x1 ->
      let p1, t1 = Transform.apply t x1 in
      let p2 = [| p1.(0) + dp.(0); p1.(1) + dp.(1) |] in
      let x2r = Transform.inverse_apply t p2 (t1 + dt) in
      if Array.for_all Rat.is_integer x2r then begin
        let x2 = Array.map Rat.to_int x2r in
        let inb = Array.for_all2 (fun v e -> v >= 0 && v < e) x2 ext in
        (not inb) || Reuse.reuses_same_element t access x1 x2
      end
      else true)
    points

(* The classification must agree with brute-force reuse enumeration: for a
   tensor classified with reuse vector (dp,dt), the iterations mapping to
   (p,t) and (p+dp,t+dt) access the same element; unicast tensors never
   share an element between distinct iterations. *)
let prop_classification_sound =
  QCheck.Test.make ~name:"Table-I classification vs brute force" ~count:60
    arbitrary_transform (fun m ->
      let t = Transform.by_names gemm [ "m"; "n"; "k" ] ~matrix:m in
      let d = Design.analyze t in
      let points = ref [] in
      let ext = Transform.selected_extents t in
      for i = 0 to ext.(0) - 1 do
        for j = 0 to ext.(1) - 1 do
          for k = 0 to ext.(2) - 1 do
            points := [| i; j; k |] :: !points
          done
        done
      done;
      List.for_all
        (fun (ti : Design.tensor_info) ->
          let access = ti.Design.access in
          match ti.Design.dataflow with
          | Dataflow.Unicast ->
            List.for_all
              (fun x1 ->
                List.for_all
                  (fun x2 ->
                    x1 == x2 || not (Reuse.reuses_same_element t access x1 x2))
                  !points)
              !points
          | Dataflow.Systolic { dp; dt } ->
            check_step dp dt access t ext !points
          | Dataflow.Multicast { dp } ->
            check_step dp 0 access t ext !points
          | Dataflow.Stationary { dt } ->
            check_step [| 0; 0 |] dt access t ext !points
          | Dataflow.Reuse2d _ | Dataflow.Reuse_full -> true)
        d.Design.tensors)

let prop_one_to_one =
  QCheck.Test.make ~name:"full-rank STT is one-to-one on the domain"
    ~count:60 arbitrary_transform (fun m ->
      let t = Transform.by_names gemm [ "m"; "n"; "k" ] ~matrix:m in
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      let ext = Transform.selected_extents t in
      for i = 0 to ext.(0) - 1 do
        for j = 0 to ext.(1) - 1 do
          for k = 0 to ext.(2) - 1 do
            let p, tm = Transform.apply t [| i; j; k |] in
            let key = (p.(0), p.(1), tm) in
            if Hashtbl.mem seen key then ok := false;
            Hashtbl.add seen key ()
          done
        done
      done;
      !ok)

let prop_reuse_dim_complements_rank =
  QCheck.Test.make ~name:"reuse dim = 3 - rank(A_sel)" ~count:60
    arbitrary_transform (fun m ->
      let t = Transform.by_names gemm [ "m"; "n"; "k" ] ~matrix:m in
      let d = Design.analyze t in
      List.for_all
        (fun (ti : Design.tensor_info) ->
          let a_sel = Transform.restricted_access t ti.Design.access in
          Dataflow.subspace_dim ti.Design.dataflow = 3 - Mat.rank a_sel)
        d.Design.tensors)

let suite =
  [ Alcotest.test_case "transform validity" `Quick test_transform_validity;
    Alcotest.test_case "fig 1(b) mapping" `Quick test_fig1b_mapping;
    Alcotest.test_case "fig 1(b) dataflows" `Quick test_fig1b_dataflows;
    Alcotest.test_case "multicast classification" `Quick
      test_multicast_classification;
    Alcotest.test_case "unicast classification" `Quick
      test_unicast_classification;
    Alcotest.test_case "2-D reuse classification" `Quick
      test_2d_reuse_classification;
    Alcotest.test_case "broadcast classification" `Quick
      test_broadcast_classification;
    Alcotest.test_case "multicast+stationary classification" `Quick
      test_multicast_stationary_classification;
    Alcotest.test_case "Eq.3 projector" `Quick test_projector_matches_nullspace;
    Alcotest.test_case "time bounds" `Quick test_time_bounds;
    Alcotest.test_case "space footprint" `Quick test_space_footprint;
    Alcotest.test_case "selection label" `Quick test_selection_label;
    Alcotest.test_case "named design search" `Quick test_search_named_designs;
    Alcotest.test_case "loose letter matching" `Quick
      test_search_loose_matching;
    Alcotest.test_case "GEMM letter space" `Quick test_all_designs_gemm;
    Alcotest.test_case "candidate matrices" `Quick test_candidate_matrices;
    Alcotest.test_case "netlist support flag" `Quick test_netlist_supported ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_classification_sound; prop_one_to_one;
        prop_reuse_dim_complements_rank ]
