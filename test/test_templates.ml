(* End-to-end hardware generation: every generated accelerator must compute
   exactly what the golden executor computes.  This is the integration test
   of the whole stack (STT analysis -> schedule -> PE templates ->
   interconnect -> memory -> controller -> netlist simulation). *)

open Tensorlib

let check_accel ?(rows = 8) ?(cols = 8) design =
  let stmt = design.Design.transform.Transform.stmt in
  let env = Exec.alloc_inputs stmt in
  let golden = Exec.run stmt env in
  let acc = Accel.generate ~rows ~cols design env in
  let got = Accel.execute acc in
  if not (Dense.equal golden got) then
    Alcotest.failf "accelerator output mismatch for %s" design.Design.name

let check_named ?rows ?cols stmt name =
  match Search.find_design stmt name with
  | Some d -> check_accel ?rows ?cols d
  | None -> Alcotest.failf "%s not realisable" name

let gemm = Workloads.gemm ~m:4 ~n:4 ~k:5

(* one test per GEMM dataflow family *)
let test_gemm_output_stationary () = check_named gemm "MNK-SST"
let test_gemm_weight_stationary () = check_named gemm "MNK-STS"
let test_gemm_multicast () = check_named gemm "MNK-MTM"
let test_gemm_multicast_stationary_out () = check_named gemm "MNK-MMT"
let test_gemm_all_systolic () = check_named gemm "MNK-SSS"
let test_gemm_input_stationary () = check_named gemm "MNK-TSM"
let test_gemm_mixed () = check_named gemm "MNK-MSS"

let test_gemm_diagonal_interconnect () =
  (* Eyeriss-flavoured diagonal line: dp = (0,-1)-ish via row [0,-1,1] *)
  let t =
    Transform.by_names gemm [ "m"; "n"; "k" ]
      ~matrix:[ [ 1; 0; 0 ]; [ 0; -1; 1 ]; [ 0; 0; 1 ] ]
  in
  check_accel (Design.analyze t)

let test_gemm_skewed_systolic () =
  (* wavefront schedule with dt=1 chains in both dimensions *)
  let t =
    Transform.by_names gemm [ "m"; "n"; "k" ]
      ~matrix:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 1; 1 ] ]
  in
  check_accel (Design.analyze t)

let test_gemm_rectangular_array () =
  (* non-square array and non-square problem *)
  let stmt = Workloads.gemm ~m:3 ~n:6 ~k:4 in
  check_named ~rows:3 ~cols:6 stmt "MNK-SST"

let test_gemm_outer_loops () =
  (* footprint smaller than the problem: unselected loops run as passes.
     Select (m,n) spatial, k temporal, but shrink the array so that m,n
     must stay small?  Instead: select only m,n,k of a bigger GEMM still
     fits; use batched passes via a 4th pseudo-loop in conv instead. *)
  let stmt = Workloads.conv2d ~k:3 ~c:3 ~y:3 ~x:3 ~p:2 ~q:2 in
  (* KCX selected; y,p,q run sequentially -> passes > 1 *)
  check_named stmt "KCX-SST"

let conv = Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3

let test_conv_output_stationary () = check_named conv "KCX-SST"
let test_conv_weight_stationary () = check_named conv "KCX-STS"
let test_conv_shidiannao_style () = check_named conv "XYP-MST"
let test_conv_multicast () = check_named conv "XYP-MMT"
let test_conv_input_stationary () = check_named conv "KPX-TMM"

let test_depthwise () =
  let dw = Workloads.depthwise_conv ~k:4 ~y:4 ~x:4 ~p:3 ~q:3 in
  check_named dw "XYP-MMM"

let test_mttkrp_unicast () =
  (* three-operand cell + unicast input *)
  let mt = Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4 in
  check_named mt "IKL-UBBB"

let test_mttkrp_systolic () =
  let mt = Workloads.mttkrp ~i:4 ~j:4 ~k:4 ~l:4 in
  check_named mt "IJK-SSMT"

let test_ttmc_unicast_output () =
  let tt = Workloads.ttmc ~i:4 ~j:4 ~k:3 ~l:4 ~m:4 in
  check_named tt "IJK-BBBU"

let test_batched_gemv () =
  let bg = Workloads.batched_gemv ~m:4 ~n:4 ~k:4 in
  check_named bg "MNK-UTS";
  check_named bg "MNK-UTM"

let test_footprint_too_big () =
  let stmt = Workloads.gemm ~m:32 ~n:32 ~k:4 in
  let d = Search.find_design_exn stmt "MNK-SST" in
  let env = Exec.alloc_inputs stmt in
  (try
     ignore (Accel.generate ~rows:4 ~cols:4 d env);
     Alcotest.fail "expected footprint rejection"
   with Accel.Unsupported _ -> ())

let test_verilog_generates () =
  let d = Search.find_design_exn gemm "MNK-SST" in
  let env = Exec.alloc_inputs gemm in
  let acc = Accel.generate ~rows:4 ~cols:4 d env in
  let v = Accel.verilog acc in
  Alcotest.(check bool) "nonempty verilog" true (String.length v > 1000);
  let has sub =
    let n = String.length sub and h = String.length v in
    let rec go i = i + n <= h && (String.sub v i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "module name" true (has "module tensorlib_MNK_SST");
  Alcotest.(check bool) "output banks" true (has "obank_col0")

let test_circuit_structure () =
  (* output-stationary GEMM: two systolic inputs need dt registers in every
     PE; structure should scale with the array *)
  let d = Search.find_design_exn gemm "MNK-SST" in
  let env = Exec.alloc_inputs gemm in
  let acc = Accel.generate ~rows:4 ~cols:4 d env in
  let st = Circuit.stats acc.Accel.circuit in
  Alcotest.(check bool) "one multiplier per PE" true
    (st.Circuit.multipliers >= 16);
  Alcotest.(check bool) "registers present" true (st.Circuit.regs > 3 * 16);
  Alcotest.(check bool) "banks present" true (st.Circuit.rams > 4)

let test_schedule_properties () =
  let d = Search.find_design_exn gemm "MNK-SST" in
  let sched = Schedule.build d ~rows:8 ~cols:8 in
  Alcotest.(check int) "event count = domain size" (4 * 4 * 5)
    sched.Schedule.event_count;
  Alcotest.(check int) "passes" 1 sched.Schedule.passes;
  (* one op per PE per cycle *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (ev : Schedule.event) ->
      let key = (ev.Schedule.pe, ev.Schedule.cycle) in
      if Hashtbl.mem seen key then Alcotest.fail "PE double-booked";
      Hashtbl.add seen key ())
    (Schedule.events sched)

let test_geometry_lines () =
  let open Tl_templates.Geometry in
  Alcotest.(check bool) "in grid" true (in_grid ~rows:4 ~cols:4 (3, 3));
  Alcotest.(check bool) "out of grid" false (in_grid ~rows:4 ~cols:4 (4, 0));
  Alcotest.(check (pair int int)) "line rep row" (2, 0)
    (line_rep ~rows:4 ~cols:4 ~dir:[| 0; 1 |] (2, 3));
  Alcotest.(check (pair int int)) "line rep diag" (0, 1)
    (line_rep ~rows:4 ~cols:4 ~dir:[| 1; 1 |] (2, 3));
  Alcotest.(check int) "diag members" 3
    (List.length (line_members ~rows:4 ~cols:4 ~dir:[| 1; 1 |] (2, 3)))

let test_reduce_tree () =
  let open Signal in
  let inputs = List.init 5 (fun i -> const ~width:16 (i + 1)) in
  let root = Reduce_tree.build inputs in
  let c = Circuit.create ~name:"tree" ~outputs:[ ("sum", root) ] in
  let s = Sim.create c in
  Sim.settle s;
  Alcotest.(check int) "tree sums" 15 (Sim.output s "sum");
  Alcotest.(check int) "depth of 5" 3 (Reduce_tree.depth 5);
  Alcotest.(check int) "depth of 1" 0 (Reduce_tree.depth 1)

let test_pe_modules_systolic () =
  let open Signal in
  let din = input "din" 16 in
  let use, dout = Pe_modules.systolic_input ~dt:2 ~din in
  let c = Circuit.create ~name:"sys" ~outputs:[ ("use", use); ("out", dout) ] in
  let s = Sim.create c in
  Sim.set_input s "din" 7;
  Sim.settle s;
  Alcotest.(check int) "use is combinational" 7 (Sim.output s "use");
  Alcotest.(check int) "out delayed" 0 (Sim.output s "out");
  Sim.cycles s 2;
  Sim.settle s;
  Alcotest.(check int) "out after dt" 7 (Sim.output s "out")

(* property: random realisable GEMM designs are functionally correct *)
let prop_random_designs_correct =
  let arb =
    QCheck.make
      ~print:(fun m ->
        String.concat ";"
          (List.map
             (fun r -> String.concat "," (List.map string_of_int r))
             m))
      QCheck.Gen.(
        let cell = int_range (-1) 1 in
        let rec fr () =
          array_size (return 9) cell >>= fun cells ->
          let m =
            List.init 3 (fun i -> List.init 3 (fun j -> cells.((i * 3) + j)))
          in
          if Rat.is_zero (Mat.det (Mat.of_int_rows m)) then fr () else return m
        in
        fr ())
  in
  QCheck.Test.make ~name:"random STT -> correct netlist" ~count:12 arb
    (fun m ->
      let stmt = Workloads.gemm ~m:3 ~n:3 ~k:3 in
      let t = Transform.by_names stmt [ "m"; "n"; "k" ] ~matrix:m in
      let d = Design.analyze t in
      if not (Design.netlist_supported d) then true
      else begin
        let env = Exec.alloc_inputs stmt in
        let golden = Exec.run stmt env in
        match Accel.generate ~rows:9 ~cols:9 d env with
        | acc -> Dense.equal golden (Accel.execute acc)
        | exception Accel.Unsupported _ -> true
      end)

let suite =
  [ Alcotest.test_case "gemm output-stationary" `Quick
      test_gemm_output_stationary;
    Alcotest.test_case "gemm weight-stationary" `Quick
      test_gemm_weight_stationary;
    Alcotest.test_case "gemm multicast" `Quick test_gemm_multicast;
    Alcotest.test_case "gemm multicast+stationary" `Quick
      test_gemm_multicast_stationary_out;
    Alcotest.test_case "gemm all-systolic" `Quick test_gemm_all_systolic;
    Alcotest.test_case "gemm input-stationary" `Quick
      test_gemm_input_stationary;
    Alcotest.test_case "gemm mixed" `Quick test_gemm_mixed;
    Alcotest.test_case "gemm diagonal interconnect" `Quick
      test_gemm_diagonal_interconnect;
    Alcotest.test_case "gemm skewed systolic" `Quick test_gemm_skewed_systolic;
    Alcotest.test_case "gemm rectangular array" `Quick
      test_gemm_rectangular_array;
    Alcotest.test_case "sequential outer loops" `Quick test_gemm_outer_loops;
    Alcotest.test_case "conv output-stationary" `Quick
      test_conv_output_stationary;
    Alcotest.test_case "conv weight-stationary" `Quick
      test_conv_weight_stationary;
    Alcotest.test_case "conv shidiannao-style" `Quick
      test_conv_shidiannao_style;
    Alcotest.test_case "conv multicast" `Quick test_conv_multicast;
    Alcotest.test_case "conv input-stationary" `Quick
      test_conv_input_stationary;
    Alcotest.test_case "depthwise conv" `Quick test_depthwise;
    Alcotest.test_case "mttkrp unicast (3 operands)" `Quick
      test_mttkrp_unicast;
    Alcotest.test_case "mttkrp systolic" `Quick test_mttkrp_systolic;
    Alcotest.test_case "ttmc unicast output" `Quick test_ttmc_unicast_output;
    Alcotest.test_case "batched gemv" `Quick test_batched_gemv;
    Alcotest.test_case "footprint rejection" `Quick test_footprint_too_big;
    Alcotest.test_case "verilog generation" `Quick test_verilog_generates;
    Alcotest.test_case "circuit structure" `Quick test_circuit_structure;
    Alcotest.test_case "schedule invariants" `Quick test_schedule_properties;
    Alcotest.test_case "geometry lines" `Quick test_geometry_lines;
    Alcotest.test_case "reduction tree" `Quick test_reduce_tree;
    Alcotest.test_case "pe module: systolic" `Quick test_pe_modules_systolic ]
  @ [ QCheck_alcotest.to_alcotest prop_random_designs_correct ]
