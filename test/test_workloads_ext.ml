(* Extended workloads: strided / pointwise convolution, GEMV; plus the
   netlist-vs-inventory structural consistency check. *)

open Tensorlib

let test_strided_conv_golden () =
  (* stride-2 3x3 conv checked against a hand computation at one point *)
  let stmt = Workloads.conv2d_strided ~stride:2 ~k:1 ~c:1 ~y:2 ~x:2 ~p:3 ~q:3 in
  let a =
    Dense.init [| 1; 5; 5 |] (fun i -> (i.(1) * 5) + i.(2))
  in
  let b = Dense.init [| 1; 1; 3; 3 |] (fun _ -> 1) in
  let out = Exec.run stmt [ ("A", a); ("B", b) ] in
  (* C[0,1,1] = sum_{p,q} A[0, 2+p, 2+q] with A[y,x] = 5y+x *)
  let expect = ref 0 in
  for p = 0 to 2 do
    for q = 0 to 2 do
      expect := !expect + ((5 * (2 + p)) + 2 + q)
    done
  done;
  Alcotest.(check int) "strided window" !expect (Dense.get out [| 0; 1; 1 |])

let test_strided_conv_shape () =
  let stmt = Workloads.conv2d_strided ~stride:2 ~k:2 ~c:2 ~y:3 ~x:3 ~p:3 ~q:3 in
  let input = List.hd stmt.Stmt.inputs in
  (* input extent: 2*(y-1) + (p-1) + 1 = 2*2 + 2 + 1 = 7 *)
  Alcotest.(check (array int)) "strided halo" [| 2; 7; 7 |]
    (Access.shape input stmt.Stmt.iters)

let test_strided_conv_netlist () =
  let stmt = Workloads.conv2d_strided ~stride:2 ~k:3 ~c:3 ~y:3 ~x:3 ~p:3 ~q:3 in
  let d = Search.find_design_exn stmt "KCX-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:8 ~cols:8 d env in
  Alcotest.(check bool) "strided hardware matches golden" true
    (Dense.equal (Exec.run stmt env) (Accel.execute acc))

let test_strided_access_classification () =
  (* under YXC selection the strided input has no reuse line along y
     (coefficient 2 breaks the y+p cancellation of unit-stride conv) *)
  let unit = Workloads.conv2d ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3 in
  let strided = Workloads.conv2d_strided ~stride:2 ~k:4 ~c:4 ~y:4 ~x:4 ~p:3 ~q:3 in
  let classify stmt =
    let t =
      Transform.by_names stmt [ "y"; "p"; "c" ]
        ~matrix:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 0; 0; 1 ] ]
    in
    (Design.find_tensor (Design.analyze t) "A").Design.dataflow
  in
  (* unit stride: y+p reuse line exists (dim >= 1) *)
  Alcotest.(check bool) "unit stride has reuse" true
    (Dataflow.subspace_dim (classify unit) >= 1);
  (* stride 2: 2y+p still has a rational reuse direction (p -= 2 per y),
     classification must find it exactly *)
  (match classify strided with
   | Dataflow.Systolic { dp = _; dt } -> Alcotest.(check bool) "dt>0" true (dt > 0)
   | df ->
     (* direction depends on T; any 1-D class is acceptable, unicast is not *)
     Alcotest.(check bool)
       ("strided classified as " ^ Dataflow.to_string df)
       true
       (Dataflow.subspace_dim df >= 1))

let test_pointwise_conv () =
  let stmt = Workloads.pointwise_conv ~k:4 ~c:4 ~y:3 ~x:3 in
  let d = Search.find_design_exn stmt "KCX-SST" in
  let env = Exec.alloc_inputs stmt in
  let acc = Accel.generate ~rows:8 ~cols:8 d env in
  Alcotest.(check bool) "pointwise hardware matches golden" true
    (Dense.equal (Exec.run stmt env) (Accel.execute acc))

let test_gemv_golden () =
  let stmt = Workloads.gemv ~m:3 ~k:4 in
  let a = Dense.init [| 3; 4 |] (fun i -> i.(0) + i.(1)) in
  let x = Dense.init [| 4 |] (fun i -> i.(0) + 1) in
  let out = Exec.run stmt [ ("A", a); ("x", x) ] in
  (* y[1] = sum_k (1+k)(k+1) = 1 + 4 + 9 + 16 = 30 *)
  Alcotest.(check int) "gemv row" 30 (Dense.get out [| 1 |])

let test_gemv_tiled_netlist () =
  (* a 2-deep nest becomes 3-deep by tiling, enabling the 2-D array *)
  let stmt = Workloads.gemv ~m:8 ~k:8 in
  let tiled = Tiling.split stmt [ ("k", 4) ] in
  Alcotest.(check int) "3 loops after tiling" 3 (Stmt.depth tiled);
  (* nest is (ko, m, k); select explicitly *)
  let t =
    Transform.v tiled ~selected:[| 1; 2; 0 |]
      ~matrix:[ [ 1; 0; 0 ]; [ 0; 1; 0 ]; [ 1; 1; 1 ] ]
  in
  let d = Design.analyze t in
  let env = Exec.alloc_inputs tiled in
  match Accel.generate ~rows:8 ~cols:8 d env with
  | acc ->
    Alcotest.(check bool) "gemv hardware matches golden" true
      (Dense.equal (Exec.run tiled env) (Accel.execute acc))
  | exception Accel.Unsupported _ -> ()

let test_netlist_matches_inventory () =
  (* the analytic module inventory and the elaborated netlist must agree on
     the datapath structure (multipliers exactly; adders are a lower bound
     because the netlist adds collector/controller adders) *)
  let check name rows cols =
    let stmt = Workloads.gemm ~m:rows ~n:cols ~k:4 in
    let d = Search.find_design_exn stmt name in
    let env = Exec.alloc_inputs stmt in
    let acc = Accel.generate ~rows ~cols d env in
    let st = Circuit.stats acc.Accel.circuit in
    let inv = Inventory.of_design ~rows ~cols d in
    Alcotest.(check int)
      (name ^ " multipliers")
      inv.Inventory.multipliers st.Circuit.multipliers;
    Alcotest.(check bool)
      (name ^ " adders >= model mac adders")
      true
      (st.Circuit.adders >= inv.Inventory.mac_adders + inv.Inventory.tree_adders)
  in
  check "MNK-SST" 4 4;
  check "MNK-MTM" 4 4;
  check "MNK-STS" 4 4

let test_gemv_not_spatial_without_tiling () =
  (* a 2-iterator nest cannot drive a 2-D array directly *)
  let stmt = Workloads.gemv ~m:4 ~k:4 in
  let t =
    Transform.v stmt ~selected:[| 0; 1 |] ~matrix:[ [ 1; 0 ]; [ 0; 1 ] ]
  in
  let d = Design.analyze t in
  let env = Exec.alloc_inputs stmt in
  (try
     ignore (Accel.generate ~rows:4 ~cols:4 d env);
     Alcotest.fail "expected Unsupported for 1-D space"
   with Accel.Unsupported _ -> ())

let suite =
  [ Alcotest.test_case "strided conv golden" `Quick test_strided_conv_golden;
    Alcotest.test_case "strided conv shape" `Quick test_strided_conv_shape;
    Alcotest.test_case "strided conv netlist" `Quick test_strided_conv_netlist;
    Alcotest.test_case "strided classification" `Quick
      test_strided_access_classification;
    Alcotest.test_case "pointwise conv netlist" `Quick test_pointwise_conv;
    Alcotest.test_case "gemv golden" `Quick test_gemv_golden;
    Alcotest.test_case "gemv tiled netlist" `Quick test_gemv_tiled_netlist;
    Alcotest.test_case "netlist matches inventory" `Quick
      test_netlist_matches_inventory;
    Alcotest.test_case "1-D space rejected" `Quick
      test_gemv_not_spatial_without_tiling ]
